//! # aft-sim
//!
//! A deterministic discrete-event simulator for asynchronous Byzantine
//! message-passing protocols — the execution substrate of the `aft`
//! reproduction of *Revisiting Asynchronous Fault Tolerant Computation with
//! Optimal Resilience* (Abraham–Dolev–Stern, PODC 2020).
//!
//! ## Model
//!
//! * `n` parties, up to `t` Byzantine, `n ≥ 3t + 1` (optimal resilience).
//! * Protocols are event-driven [`Instance`]s composed hierarchically via
//!   [`SessionId`]s: instances spawn children, children's outputs flow back
//!   to their parents.
//! * The asynchronous adversary is a [`Scheduler`]: it chooses the delivery
//!   order of in-flight messages, subject to a fairness cap (every message
//!   is eventually delivered — the paper's model).
//! * Byzantine parties run arbitrary [`Instance`]s instead of honest ones;
//!   whole-party crashes are injected with [`Runtime::crash`] /
//!   [`SimNetwork::crash_at`].
//! * A run is a pure function of its seed: Monte-Carlo estimation of
//!   probabilistic guarantees ([`run_trials`]) and byte-exact replay of
//!   adversarial schedules both follow.
//! * Shunning (Definition 3.2 of the paper) is enforced by the per-party
//!   router: after `Shun(i → j)`, party `i` drops `j`'s messages outside
//!   the invocation in which the shun occurred; each ordered pair shuns at
//!   most once, so fewer than `n²` shun events occur globally.
//!
//! ## The runtime seam
//!
//! Every execution backend implements the [`Runtime`] trait, so the same
//! deployment runs unchanged on:
//!
//! * [`SimNetwork`] — the deterministic simulator (adversarial schedulers,
//!   traces, replay);
//! * [`ShardedSimRuntime`] — the sharded deterministic simulator: parties
//!   partitioned across worker threads, epoch-barrier merge, schedules
//!   that are a pure function of `(seed, scheduler)` for *every* shard
//!   count;
//! * [`WireRuntime`] — the wire-serialized deterministic runtime: every
//!   envelope is encoded to a self-describing byte frame (see the
//!   [`wire`] codec module), round-tripped through a per-party OS socket
//!   pair, and decoded lazily at the receiver — the byte-level seam the
//!   `garbage`/`equivocate` adversaries fuzz with malformed frames;
//! * [`AsyncRuntime`] — the async event-loop backend: every party runs
//!   as a task on a single-threaded executor and each delivery
//!   round-trips through per-party channels, while all scheduling stays
//!   in the deterministic network — bit-for-bit the simulator's
//!   schedule under any deterministic scheduler family;
//! * [`ThreadedRuntime`] — real OS threads and channels (genuine
//!   asynchrony, no determinism);
//! * [`ProcRuntime`] — the in-process stand-in for the process-per-party
//!   deployment (`rt=proc`); the real one-OS-process-per-party
//!   deployment with supervised crash/restart lives in `aft-bench`
//!   (`aft-partyd` + `exp_deployment`) on top of [`deploy`]'s envelope
//!   codec.
//!
//! [`runtime_by_name`] builds any of them from a string, which is what the
//! `exp_*` binaries' `--runtime` flags and the cross-backend test suites
//! use. See the crate-level example on [`SimNetwork`] and the trait
//! example on [`Runtime`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
mod async_rt;
mod behaviors;
pub mod cluster;
pub mod deploy;
mod ids;
mod instance;
mod montecarlo;
pub mod net;
mod network;
mod node;
mod payload;
mod queue;
mod runtime;
pub mod scenario;
mod scheduler;
pub mod shard;
pub mod threaded;
pub mod trace;
pub mod wire;
mod wire_rt;

pub use adaptive::{
    AdaptiveAttack, AdaptiveController, AdaptiveShell, CorruptMode, CorruptionPlan, ObsEvent,
    PinPolicy, SharedAdaptive,
};
pub use async_rt::AsyncRuntime;
pub use behaviors::{Equivocator, Garbage, GarbageInstance, MuteAfter, SilentInstance};
pub use deploy::{decode_envelope, encode_envelope, party_node, ProcRuntime};
pub use ids::{PartyId, SessionId, SessionTag};
pub use instance::{Context, Instance};
pub use montecarlo::{run_trials, Bernoulli};
pub use net::{LatencyDist, NetEvent, NetScheduler, NetSpec, PartitionSpec};
pub use network::{Envelope, SimNetwork};
pub use node::{Node, Outgoing, ShunRegistry};
pub use payload::{FrameBytes, MsgView, Payload};
pub use queue::{BatchSlot, MsgMeta, Pending};
pub use runtime::{
    runtime_by_name, Metrics, NetConfig, RunReport, Runtime, RuntimeExt, StopReason,
};
pub use scenario::{
    AdaptiveCtx, AdaptiveSpec, AttackCtx, AttackRegistry, AttackRole, Corruption, FaultSpec,
    Fingerprint, MatrixCell, Scenario, ScenarioMatrix,
};
pub use scheduler::{
    BlockScheduler, FifoScheduler, LifoScheduler, RandomScheduler, Scheduler, SchedulerConfig,
    StarveScheduler, WindowScheduler,
};
pub use shard::ShardedSimRuntime;
pub use threaded::{run_threaded, ThreadedOutputs, ThreadedRuntime};
pub use trace::{
    DepthHistogram, DropReason, FullRecorder, RingRecorder, TraceEvent, TraceMode, TraceSink,
    TraceSummary,
};
pub use wire::{CodecRegistry, WireMessage};
pub use wire_rt::WireRuntime;

/// Builds a boxed scheduler by name — convenience for experiment sweeps.
///
/// Supported names:
///
/// * `"fifo"`, `"random"`, `"lifo"`;
/// * `"window<k>"` for any positive `k` (e.g. `"window4"`, `"window128"`);
/// * `"block:<b>"` for any positive block size — the locality-preserving
///   random scheduler ([`BlockScheduler`], e.g. `"block:16"`);
/// * `"starve:<ids>"` with a comma-separated victim list
///   (e.g. `"starve:2"`, `"starve:1,3"`);
/// * `"net"` / `"net:<args>"` — the virtual-time network model
///   ([`NetScheduler`], e.g. `"net:lat=1..20,partition=p50,heal=200"`).
///
/// # Examples
///
/// ```
/// let s = aft_sim::scheduler_by_name("random").unwrap();
/// assert_eq!(s.name(), "random");
/// assert!(aft_sim::scheduler_by_name("window9").is_some());
/// assert!(aft_sim::scheduler_by_name("block:16").is_some());
/// assert!(aft_sim::scheduler_by_name("starve:1,3").is_some());
/// assert!(aft_sim::scheduler_by_name("net:lat=1..20,partition=p50,heal=200").is_some());
/// assert!(aft_sim::scheduler_by_name("bogus").is_none());
/// ```
pub fn scheduler_by_name(name: &str) -> Option<Box<dyn Scheduler>> {
    ALL_SCHEDULERS.iter().find_map(|family| family.parse(name))
}

/// One scheduler family known to [`scheduler_by_name`].
///
/// The registry is a table so that everything downstream derives from one
/// place: the parser tries each family in order, coverage tests iterate
/// the table, and conformance matrices use each family's
/// [`example`](SchedulerFamily::example) as their scheduler-axis row — a
/// newly registered scheduler is automatically parsed, tested and swept.
pub struct SchedulerFamily {
    /// The family name, as reported by [`Scheduler::name`].
    pub name: &'static str,
    /// A canonical example spec that parses into this family; conformance
    /// matrices use it as the family's representative.
    pub example: &'static str,
    parser: fn(&str) -> Option<Box<dyn Scheduler>>,
}

impl SchedulerFamily {
    /// Parses `spec` as a member of this family (`None` when `spec`
    /// belongs to another family or is malformed).
    pub fn parse(&self, spec: &str) -> Option<Box<dyn Scheduler>> {
        (self.parser)(spec)
    }
}

impl std::fmt::Debug for SchedulerFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerFamily")
            .field("name", &self.name)
            .field("example", &self.example)
            .finish_non_exhaustive()
    }
}

/// Every scheduler family [`scheduler_by_name`] can build — THE registry.
/// Register new schedulers here (and only here): parsing, the
/// `scheduler_by_name` coverage test and the adversarial conformance
/// matrix all derive their scheduler lists from this table.
pub static ALL_SCHEDULERS: &[SchedulerFamily] = &[
    SchedulerFamily {
        name: "fifo",
        example: "fifo",
        parser: |s| (s == "fifo").then(|| Box::new(FifoScheduler) as Box<dyn Scheduler>),
    },
    SchedulerFamily {
        name: "random",
        example: "random",
        parser: |s| (s == "random").then(|| Box::new(RandomScheduler) as Box<dyn Scheduler>),
    },
    SchedulerFamily {
        name: "lifo",
        example: "lifo",
        parser: |s| (s == "lifo").then(|| Box::new(LifoScheduler) as Box<dyn Scheduler>),
    },
    SchedulerFamily {
        name: "window",
        example: "window4",
        parser: |s| {
            let k: usize = s.strip_prefix("window")?.parse().ok()?;
            (k > 0).then(|| Box::new(WindowScheduler::new(k)) as Box<dyn Scheduler>)
        },
    },
    SchedulerFamily {
        name: "block",
        example: "block:8",
        parser: |s| {
            let b: usize = s.strip_prefix("block:")?.parse().ok()?;
            (b > 0).then(|| Box::new(BlockScheduler::new(b)) as Box<dyn Scheduler>)
        },
    },
    SchedulerFamily {
        name: "starve",
        example: "starve:1",
        parser: |s| {
            let rest = s.strip_prefix("starve:")?;
            let mut victims = Vec::new();
            for part in rest.split(',') {
                victims.push(PartyId(part.trim().parse().ok()?));
            }
            Some(Box::new(StarveScheduler::new(victims)))
        },
    },
    SchedulerFamily {
        name: "net",
        example: "net:lat=1..8",
        parser: |s| {
            let spec = NetSpec::parse(s)?;
            Some(Box::new(NetScheduler::new(spec)) as Box<dyn Scheduler>)
        },
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_by_name_covers_all() {
        // Derived from the shared ALL_SCHEDULERS table: a newly registered
        // family is covered here (and by the conformance matrix's
        // scheduler axis) automatically — no hardcoded name list to forget.
        for family in ALL_SCHEDULERS {
            let s = scheduler_by_name(family.example)
                .unwrap_or_else(|| panic!("example {:?} must parse", family.example));
            assert_eq!(s.name(), family.name, "example {:?}", family.example);
            assert!(
                family.parse(family.example).is_some(),
                "family {} accepts its own example",
                family.name
            );
        }
        assert!(scheduler_by_name("nope").is_none());
        assert!(scheduler_by_name("starve:x").is_none());
        assert!(scheduler_by_name("block:0").is_none(), "zero block");
        assert!(scheduler_by_name("block:").is_none(), "missing size");
        assert!(scheduler_by_name("block:x").is_none(), "non-numeric size");
    }

    #[test]
    fn scheduler_family_examples_are_unique_and_exhaustive() {
        // Each example parses into exactly one family — so a matrix axis
        // built from the examples exercises every family exactly once.
        for family in ALL_SCHEDULERS {
            let owners: Vec<&str> = ALL_SCHEDULERS
                .iter()
                .filter(|f| f.parse(family.example).is_some())
                .map(|f| f.name)
                .collect();
            assert_eq!(owners, vec![family.name], "example {:?}", family.example);
        }
        // Sanity: the Scheduler impls in this crate are all represented.
        let names: Vec<&str> = ALL_SCHEDULERS.iter().map(|f| f.name).collect();
        for required in ["fifo", "random", "lifo", "window", "block", "starve", "net"] {
            assert!(names.contains(&required), "{required} missing from table");
        }
    }

    #[test]
    fn scheduler_by_name_window_arbitrary_k() {
        for k in [1usize, 2, 3, 7, 9, 100, 4096] {
            let s = scheduler_by_name(&format!("window{k}")).unwrap();
            assert_eq!(s.name(), "window", "window{k}");
        }
        assert!(scheduler_by_name("window0").is_none(), "zero window");
        assert!(scheduler_by_name("window").is_none(), "missing k");
        assert!(scheduler_by_name("window-3").is_none(), "negative k");
        assert!(scheduler_by_name("windowabc").is_none(), "non-numeric k");
    }

    #[test]
    fn scheduler_by_name_starve_multi_party() {
        for spec in ["starve:0", "starve:1,3", "starve:0,1,2", "starve: 1, 3"] {
            let s = scheduler_by_name(spec).unwrap();
            assert_eq!(s.name(), "starve", "{spec}");
        }
        assert!(scheduler_by_name("starve:").is_none(), "empty list");
        assert!(scheduler_by_name("starve:1,,3").is_none(), "empty element");
        assert!(scheduler_by_name("starve:1,x").is_none(), "bad element");
    }

    #[test]
    fn starve_multi_party_actually_starves_all_victims() {
        use rand::SeedableRng;
        use rand_chacha::ChaCha12Rng;
        // Build a pending set where only one entry avoids both victims.
        let mut q = Pending::new();
        let mk = |from: usize, to: usize, seq: u64| Envelope {
            from: PartyId(from),
            to: PartyId(to),
            session: SessionId::root().child(SessionTag::new("x", 0)),
            payload: Payload::new(0u8),
            seq,
            born_step: 0,
        };
        q.push(mk(1, 0, 0)); // touches victim 1
        q.push(mk(0, 3, 1)); // touches victim 3
        q.push(mk(0, 2, 2)); // clean
        let mut sched = scheduler_by_name("starve:1,3").unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        for _ in 0..50 {
            assert_eq!(sched.pick(&q, &mut rng), 2);
        }
    }
}
