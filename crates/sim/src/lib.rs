//! # aft-sim
//!
//! A deterministic discrete-event simulator for asynchronous Byzantine
//! message-passing protocols — the execution substrate of the `aft`
//! reproduction of *Revisiting Asynchronous Fault Tolerant Computation with
//! Optimal Resilience* (Abraham–Dolev–Stern, PODC 2020).
//!
//! ## Model
//!
//! * `n` parties, up to `t` Byzantine, `n ≥ 3t + 1` (optimal resilience).
//! * Protocols are event-driven [`Instance`]s composed hierarchically via
//!   [`SessionId`]s: instances spawn children, children's outputs flow back
//!   to their parents.
//! * The asynchronous adversary is a [`Scheduler`]: it chooses the delivery
//!   order of in-flight messages, subject to a fairness cap (every message
//!   is eventually delivered — the paper's model).
//! * Byzantine parties run arbitrary [`Instance`]s instead of honest ones;
//!   whole-party crashes are injected with [`SimNetwork::crash`] /
//!   [`SimNetwork::crash_at`].
//! * A run is a pure function of its seed: Monte-Carlo estimation of
//!   probabilistic guarantees ([`run_trials`]) and byte-exact replay of
//!   adversarial schedules both follow.
//! * Shunning (Definition 3.2 of the paper) is enforced by the per-party
//!   router: after `Shun(i → j)`, party `i` drops `j`'s messages outside
//!   the invocation in which the shun occurred; each ordered pair shuns at
//!   most once, so fewer than `n²` shun events occur globally.
//!
//! See the crate-level example on [`SimNetwork`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behaviors;
pub mod cluster;
mod ids;
mod instance;
mod montecarlo;
mod network;
mod node;
mod payload;
mod scheduler;
pub mod threaded;

pub use behaviors::{Garbage, GarbageInstance, MuteAfter, SilentInstance};
pub use ids::{PartyId, SessionId, SessionTag};
pub use instance::{Context, Instance};
pub use montecarlo::{run_trials, Bernoulli};
pub use network::{Envelope, Metrics, NetConfig, RunReport, SimNetwork, StopReason};
pub use node::{Node, Outgoing, ShunRegistry};
pub use payload::Payload;
pub use scheduler::{
    FifoScheduler, LifoScheduler, RandomScheduler, Scheduler, SchedulerConfig, StarveScheduler,
    WindowScheduler,
};

/// Builds a boxed scheduler by name — convenience for experiment sweeps.
///
/// Supported names: `"fifo"`, `"random"`, `"lifo"`, `"window4"`,
/// `"window16"`, and `"starve:<id>"` (starve one party).
///
/// # Examples
///
/// ```
/// let s = aft_sim::scheduler_by_name("random").unwrap();
/// assert_eq!(s.name(), "random");
/// assert!(aft_sim::scheduler_by_name("bogus").is_none());
/// ```
pub fn scheduler_by_name(name: &str) -> Option<Box<dyn Scheduler>> {
    match name {
        "fifo" => Some(Box::new(FifoScheduler)),
        "random" => Some(Box::new(RandomScheduler)),
        "lifo" => Some(Box::new(LifoScheduler)),
        "window4" => Some(Box::new(WindowScheduler::new(4))),
        "window16" => Some(Box::new(WindowScheduler::new(16))),
        _ => {
            let rest = name.strip_prefix("starve:")?;
            let id: usize = rest.parse().ok()?;
            Some(Box::new(StarveScheduler::new([PartyId(id)])))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_by_name_covers_all() {
        for n in ["fifo", "random", "lifo", "window4", "window16", "starve:2"] {
            assert!(scheduler_by_name(n).is_some(), "{n}");
        }
        assert!(scheduler_by_name("nope").is_none());
        assert!(scheduler_by_name("starve:x").is_none());
    }
}
