//! The sharded deterministic simulator: parallel execution with a
//! reproducible schedule.
//!
//! [`ShardedSimRuntime`] runs the same discrete-event model as
//! [`SimNetwork`] but partitions parties across `k` worker shards so that
//! delivery work uses all cores. Determinism survives the parallelism
//! because the delivery schedule is defined *logically*, never by thread
//! timing:
//!
//! * every party owns a private inbox (a [`Pending`] slab queue), a
//!   private [`Scheduler`] instance, and a private scheduler RNG derived
//!   from `(seed, party)`;
//! * execution proceeds in **epochs**: in epoch `e` each party drains
//!   exactly the messages that were in its inbox at the epoch barrier,
//!   in an order chosen by its own scheduler — each pick selects a
//!   same-sender *batch* and delivers its whole run in FIFO order, so
//!   scheduling work is O(batches) while delivery stays per-message;
//!   everything it sends — intra-shard or cross-shard, even to itself —
//!   is buffered and only becomes deliverable in epoch `e + 1`;
//! * at the barrier, buffered envelopes flow through per-pair ordered
//!   channels and are merged into the destination inboxes **as
//!   sender-blocks, keyed by `(epoch, src)`**: each sender's channel for
//!   the epoch lands as *one batch record* in the destination's inbox,
//!   senders in ascending party order, envelopes within a batch in
//!   emission order. The handoff moves O(senders) `Vec` handles, not
//!   O(messages) envelopes, and a scheduler pick that stays inside a
//!   batch walks a contiguous buffer instead of hopping across the slab.
//!
//! Because every per-party decision depends only on `(seed, scheduler,
//! n)` and the merge key is a pure function of the logical send order,
//! the delivered-message sequence is a pure function of
//! `(seed, scheduler)` — *independent of the shard count `k` and of any
//! OS thread interleaving*. `sharded:1`, `sharded:4` and `sharded:16`
//! produce bit-identical traces, outputs and metrics; the shard count
//! only chooses how much hardware executes the schedule. Epoch barriers
//! also give structural fairness: every message is delivered exactly one
//! epoch after it was sent, so no aging cap is needed.
//!
//! Unlike [`ThreadedRuntime`] episodes, node state persists across
//! [`run`](Runtime::run) calls: share→reconstruct chains and other
//! multi-phase deployments run unchanged.
//!
//! [`SimNetwork`]: crate::SimNetwork
//! [`ThreadedRuntime`]: crate::ThreadedRuntime

use crate::adaptive::{ObsEvent, SharedAdaptive};
use crate::ids::{PartyId, SessionId};
use crate::instance::Instance;
use crate::net::NetEvent;
use crate::network::Envelope;
use crate::node::Node;
use crate::payload::Payload;
use crate::queue::Pending;
use crate::runtime::{
    build_node, deliver_counted, DeliverTrace, Metrics, NetConfig, RecoverPlan, RunReport, Runtime,
    StopReason, REJOIN_GRACE,
};
use crate::scheduler::{RandomScheduler, Scheduler};
use crate::trace::{TraceEvent, TraceMode, TraceSink};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Everything one party needs to process an epoch without touching any
/// other party's state — the unit of shard parallelism.
struct PartyState {
    node: Node,
    /// Messages deliverable in the current epoch.
    inbox: Pending,
    /// This party's delivery-order policy over its own inbox.
    scheduler: Box<dyn Scheduler>,
    /// Scheduler randomness, derived from `(seed, party)`.
    rng: ChaCha12Rng,
    /// Run metrics attributed to this party (sends it emitted, deliveries
    /// it executed). Merged in party order for reports.
    metrics: Metrics,
    /// The per-pair ordered channels, sender side: `outbox[dst]` holds
    /// this party's envelopes to `dst` emitted this epoch, in emission
    /// order; handed off whole at the barrier.
    outbox: Vec<Vec<Envelope>>,
    /// Per-party emission counter (`seq = emit * n + party` stays globally
    /// unique and per-sender monotone).
    emit: u64,
    /// Delivered `(seq, from, to)` tuples this epoch, if tracing.
    trace: Option<Vec<(u64, PartyId, PartyId)>>,
    /// Flight-recorder events this epoch (flattened into the global sink
    /// at the barrier in party order, so the stream is a pure function of
    /// the logical schedule). `step` fields are party-local delivery
    /// counts: `(party, step)` uniquely names a delivery.
    events: Option<Vec<TraceEvent>>,
    /// Adaptive-adversary observation events this epoch (drained into the
    /// shared controller at the barrier in party order, so adaptive
    /// decisions are a pure function of the logical schedule — shells only
    /// *read* the ledger during parallel epochs, writes land at barriers).
    obs: Option<Vec<ObsEvent>>,
    /// Scratch buffer for node dispatch output.
    scratch: Vec<crate::node::Outgoing>,
}

impl PartyState {
    /// Tags `self.scratch` as emissions of this party and appends them to
    /// the per-pair channels (crashed nodes produce no outgoing work, so
    /// this never sees output from one).
    fn flush_sends(&mut self, me: PartyId, n: u64, epoch: u64, causal: Option<u64>) {
        for o in self.scratch.drain(..) {
            self.metrics.on_sent(&o.session);
            let out = &mut self.outbox[o.to.0];
            if out.capacity() == 0 {
                // The barrier handed this outbox's buffer away whole;
                // refill it from the inbox's recycled batch deques, so
                // the allocation loops outbox → cross-shard batch →
                // drained deque → spare pool → outbox.
                match self.inbox.take_spare_vec() {
                    Some(spare) => {
                        *out = spare;
                        self.metrics.pool_reused += 1;
                    }
                    None => self.metrics.pool_alloc += 1,
                }
            }
            let seq = self.emit * n + me.0 as u64;
            if let Some(events) = &mut self.events {
                events.push(TraceEvent::Send {
                    step: self.metrics.steps,
                    from: me,
                    to: o.to,
                    session: o.session.clone(),
                    seq,
                    causal_parent: causal,
                });
            }
            out.push(Envelope {
                from: me,
                to: o.to,
                session: o.session,
                payload: o.payload,
                seq,
                born_step: epoch,
            });
            self.emit += 1;
        }
    }

    /// Delivers up to `limit` messages from the epoch inbox, buffering all
    /// resulting sends for the next epoch. Returns the number delivered.
    ///
    /// A scheduler pick selects a *batch* (a same-sender run) and the
    /// whole run is delivered in FIFO order before the next pick: one RNG
    /// draw and one Fenwick lookup per batch instead of per message, with
    /// the run read out of one contiguous buffer. The schedule stays a
    /// pure function of `(seed, scheduler)` — batching is defined by the
    /// logical send order, never by the shard partition.
    fn drain_epoch(&mut self, me: PartyId, n: u64, epoch: u64, limit: u64) -> u64 {
        let mut done = 0;
        while !self.inbox.is_empty() && done < limit {
            let idx = self.scheduler.pick(&self.inbox, &mut self.rng);
            debug_assert!(idx < self.inbox.len(), "scheduler index out of range");
            let idx = idx.min(self.inbox.len() - 1);
            let slot = self.inbox.slot_of(idx);
            let run = (self.inbox.run_len_of_slot(slot) as u64).min(limit - done);
            // Virtual arrival time of the picked batch, if this party's
            // scheduler models one (the `net:` family). Captured per pick:
            // the clock advances monotonically across picks.
            let vnow = self.scheduler.virtual_now();
            if let Some(events) = &mut self.events {
                events.push(TraceEvent::SchedulerPick {
                    step: self.metrics.steps,
                    party: me,
                    queued: self.inbox.len(),
                    run: run as usize,
                });
            }
            if let Some(obs) = &mut self.obs {
                obs.push(ObsEvent::SchedulerPick {
                    party: me,
                    queued: self.inbox.len(),
                    run: run as usize,
                });
            }
            for _ in 0..run {
                let env = self.inbox.take_slot(slot);
                if let Some(trace) = &mut self.trace {
                    trace.push((env.seq, env.from, env.to));
                }
                if let Some(vt) = vnow {
                    let kind = env.session.last().map_or("root", |t| t.kind);
                    self.metrics.on_virtual_delivery(kind, vt);
                }
                let obs_pre = self.obs.as_ref().map(|_| {
                    (
                        env.from,
                        env.to,
                        env.session.last().map_or("root", |t| t.kind),
                        self.metrics.delivered,
                    )
                });
                let PartyState {
                    node,
                    metrics,
                    events,
                    obs,
                    scratch,
                    ..
                } = self;
                let tctx = events.as_mut().map(|ev| DeliverTrace {
                    sink: ev,
                    seq: env.seq,
                    vtime: vnow,
                });
                deliver_counted(
                    node,
                    env.from,
                    env.session,
                    env.payload,
                    scratch,
                    metrics,
                    tctx,
                );
                if let Some((from, to, kind, delivered_before)) = obs_pre {
                    if metrics.delivered > delivered_before {
                        obs.as_mut()
                            .expect("obs_pre implies obs")
                            .push(ObsEvent::Deliver {
                                party: to,
                                from,
                                kind,
                                step: metrics.steps,
                            });
                    }
                }
                // Party-local step of the delivery that just ran: the
                // causal parent of everything it emitted.
                let parent = self.metrics.steps;
                self.flush_sends(me, n, epoch, Some(parent));
            }
            done += run;
        }
        done
    }
}

/// Refills the inboxes of one shard's parties (`chunk`) from
/// `channels[local dst][src]` — the per-pair ordered channels of this
/// epoch — in `(epoch, src)` sender-block order: each sender's whole
/// channel becomes one inbox batch, senders in ascending party order.
/// Comparison-free and O(senders) per inbox: every channel `Vec` is moved
/// wholesale, no envelope is touched individually.
fn merge_into_shard(chunk: &mut [PartyState], channels: &mut [Vec<Vec<Envelope>>]) {
    for (ps, pairs) in chunk.iter_mut().zip(channels.iter_mut()) {
        for pair in pairs.iter_mut() {
            if !pair.is_empty() {
                ps.inbox.push_batch(std::mem::take(pair));
            }
        }
    }
}

/// The sharded deterministic simulator (see the [module docs](self) for
/// the epoch/merge model).
///
/// Spawns are buffered until [`run`](Runtime::run) (matching
/// [`ThreadedRuntime`]), so a [`crash`](Runtime::crash) issued before the
/// first `run` retracts the party entirely: it never sends its initial
/// messages, on any backend. Node state persists across `run` calls.
///
/// [`ThreadedRuntime`]: crate::ThreadedRuntime
///
/// # Examples
///
/// ```
/// use aft_sim::{Context, Instance, NetConfig, PartyId, Payload, Runtime, RuntimeExt,
///               SessionId, SessionTag, ShardedSimRuntime};
///
/// struct Hello { heard: usize }
/// impl Instance for Hello {
///     fn on_start(&mut self, ctx: &mut Context<'_>) { ctx.send_all(1u8); }
///     fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
///         self.heard += 1;
///         if self.heard == ctx.n() { ctx.output(self.heard); }
///     }
/// }
///
/// let sid = SessionId::root().child(SessionTag::new("hello", 0));
/// let mut rt = ShardedSimRuntime::new(NetConfig::new(4, 1, 7), 2);
/// for p in 0..4 {
///     rt.spawn(PartyId(p), sid.clone(), Box::new(Hello { heard: 0 }));
/// }
/// let report = rt.run(1_000_000);
/// assert_eq!(report.stop, aft_sim::StopReason::Quiescent);
/// for p in 0..4 {
///     assert_eq!(rt.output_as::<usize>(PartyId(p), &sid), Some(&4));
/// }
/// ```
pub struct ShardedSimRuntime {
    config: NetConfig,
    /// Worker shard count (clamped to `n`).
    k: usize,
    /// OS threads used to execute the shards (`min(k, cores)`).
    workers: usize,
    parties: Vec<PartyState>,
    /// Spawns buffered until the next `run` call.
    pending_spawns: Vec<(PartyId, SessionId, Box<dyn Instance>)>,
    /// Scheduled crash-recoveries, fired when a party's virtual clock
    /// reaches the plan time (forced at would-be quiescence so order-only
    /// schedulers still observe the rejoin).
    recoveries: Vec<RecoverPlan>,
    /// Completed epoch barriers (also the `born_step` stamp of emissions).
    epoch: u64,
    /// Total deliveries executed, across all shards and epochs.
    steps: u64,
    /// Flattened delivery trace in logical `(epoch, party, index)` order,
    /// if tracing.
    trace: Option<Vec<(u64, PartyId, PartyId)>>,
    /// Structured flight recorder (see [`crate::trace`]): per-party event
    /// buffers flatten into this sink at every barrier, in party order.
    /// Observational only — never consulted by the schedule.
    sink: Option<Box<dyn TraceSink>>,
    /// The per-pair ordered channels, receiver side: `channels[dst][src]`
    /// is filled by the barrier handoff and drained by the merge.
    channels: Vec<Vec<Vec<Envelope>>>,
    /// Adaptive-adversary controller, if installed: per-party observation
    /// buffers drain into it at every barrier, in party order.
    adaptive: Option<SharedAdaptive>,
}

impl ShardedSimRuntime {
    /// Creates a sharded simulator with `k` worker shards and the random
    /// per-party scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `n < 3t + 1`, or `k == 0`.
    pub fn new(config: NetConfig, k: usize) -> Self {
        Self::with_scheduler_factory(config, k, |_| Box::new(RandomScheduler))
    }

    /// Creates a sharded simulator whose party `p` uses the scheduler
    /// built by `factory(p)`.
    ///
    /// Each party needs its *own* scheduler instance (schedulers are
    /// stateful), which is also what keeps the schedule independent of
    /// the shard partition.
    ///
    /// # Panics
    ///
    /// See [`ShardedSimRuntime::new`].
    pub fn with_scheduler_factory(
        config: NetConfig,
        k: usize,
        factory: impl Fn(PartyId) -> Box<dyn Scheduler>,
    ) -> Self {
        assert!(config.n > 0, "need at least one party");
        assert!(
            config.n > 3 * config.t,
            "optimal resilience requires n >= 3t + 1 (n={}, t={})",
            config.n,
            config.t
        );
        assert!(k > 0, "need at least one shard");
        let k = k.min(config.n);
        let parties = (0..config.n)
            .map(|p| {
                // Every party gets its own scheduler instance; configuring
                // each from the same `(seed, spec)` keeps virtual-time
                // plans (partitions, latency) identical across parties and
                // shard counts.
                let mut scheduler = factory(PartyId(p));
                scheduler.configure(&config);
                PartyState {
                    node: build_node(&config, p),
                    inbox: Pending::new(),
                    scheduler,
                    rng: shard_sched_rng(config.seed, p),
                    metrics: Metrics::default(),
                    outbox: (0..config.n).map(|_| Vec::new()).collect(),
                    emit: 0,
                    trace: None,
                    events: None,
                    obs: None,
                    scratch: Vec::new(),
                }
            })
            .collect();
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        ShardedSimRuntime {
            config,
            k,
            workers: k.min(cores),
            parties,
            pending_spawns: Vec::new(),
            recoveries: Vec::new(),
            epoch: 0,
            steps: 0,
            trace: None,
            sink: None,
            channels: (0..config.n)
                .map(|_| (0..config.n).map(|_| Vec::new()).collect())
                .collect(),
            adaptive: None,
        }
    }

    /// Shard width: party `p` lives on shard `p / chunk_width()`.
    fn chunk_width(&self) -> usize {
        self.parties.len().div_ceil(self.k)
    }

    /// OS threads actually used to execute the logical shards (cached at
    /// construction): spawning more workers than cores only adds
    /// overhead, and the logical schedule never depends on the execution
    /// arrangement.
    fn workers(&self) -> usize {
        self.workers
    }

    /// The number of worker shards (after clamping to `n`).
    pub fn shards(&self) -> usize {
        self.k
    }

    /// Enables recording of `(seq, from, to)` delivery tuples in logical
    /// `(epoch, party, delivery index)` order, for determinism tests.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
        for ps in &mut self.parties {
            ps.trace = Some(Vec::new());
        }
    }

    /// The recorded delivery trace (empty unless [`enable_trace`] was
    /// called).
    ///
    /// [`enable_trace`]: ShardedSimRuntime::enable_trace
    pub fn trace(&self) -> &[(u64, PartyId, PartyId)] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Messages deliverable in the next epoch (diagnostics).
    pub fn pending_len(&self) -> usize {
        self.parties.iter().map(|p| p.inbox.messages()).sum()
    }

    /// Immutable access to a node (outputs, shun registry, …).
    pub fn node(&self, party: PartyId) -> &Node {
        &self.parties[party.0].node
    }

    /// Runs the spawn phase: starts every buffered instance and buffers
    /// the initial sends as epoch emissions.
    fn apply_spawns(&mut self) {
        let spawns = std::mem::take(&mut self.pending_spawns);
        let n = self.config.n as u64;
        let epoch = self.epoch;
        for (party, session, instance) in spawns {
            let ps = &mut self.parties[party.0];
            ps.scratch = ps.node.spawn(session, instance);
            // Spawn-phase sends have no causal parent: they are DAG roots.
            ps.flush_sends(party, n, epoch, None);
        }
    }

    /// The epoch barrier: hands every per-pair channel from the sender
    /// side to the receiver side (an O(n²) swap of `Vec` handles, no
    /// envelope moves) and refills the inboxes in `(epoch, src)`
    /// sender-block order — each sender's channel becomes one inbox batch,
    /// senders in ascending party order, so the refill also moves O(n)
    /// handles per inbox rather than O(messages) envelopes. The merge
    /// itself runs shard-parallel: each worker refills only its own
    /// parties' inboxes. Also flattens per-party traces into the logical
    /// global trace.
    fn merge_barrier(&mut self) {
        let n = self.config.n;
        let mut moved = 0;
        for src in 0..n {
            for (dst, pair) in self.parties[src].outbox.iter_mut().enumerate() {
                moved += pair.len();
                self.channels[dst][src] = std::mem::take(pair);
            }
        }
        let chunk = self.chunk_width();
        if self.workers() == 1 || moved < 4096 {
            for (shard, channels) in self
                .parties
                .chunks_mut(chunk)
                .zip(self.channels.chunks_mut(chunk))
            {
                merge_into_shard(shard, channels);
            }
        } else {
            std::thread::scope(|scope| {
                for (shard, channels) in self
                    .parties
                    .chunks_mut(chunk)
                    .zip(self.channels.chunks_mut(chunk))
                {
                    scope.spawn(move || merge_into_shard(shard, channels));
                }
            });
        }
        if let Some(global) = &mut self.trace {
            for ps in &mut self.parties {
                if let Some(local) = &mut ps.trace {
                    global.append(local);
                }
            }
        }
        if let Some(sink) = &mut self.sink {
            for ps in &mut self.parties {
                if let Some(local) = &mut ps.events {
                    for event in local.drain(..) {
                        sink.record(event);
                    }
                }
            }
            // Every party derives the identical partition plan from
            // `(seed, spec)`, so party 0's scheduler speaks for all of
            // them; draining only one copy avoids duplicate lifecycle
            // events in the flight recorder.
            let mut net_events = Vec::new();
            self.parties[0].scheduler.drain_net_events(&mut net_events);
            for event in net_events {
                sink.record(match event {
                    NetEvent::PartitionStart { vtime, cut } => TraceEvent::PartitionStart {
                        step: self.steps,
                        vtime,
                        cut,
                    },
                    NetEvent::PartitionHeal { vtime } => TraceEvent::PartitionHeal {
                        step: self.steps,
                        vtime,
                    },
                });
            }
        }
        if let Some(ctrl) = &self.adaptive {
            // Epoch-delayed observation: the controller sees each epoch's
            // events here, in party order — a pure function of the logical
            // schedule, independent of shard count and thread timing.
            // Decisions therefore take effect from the next epoch on.
            let mut ctrl = ctrl.lock().expect("adaptive controller lock poisoned");
            for ps in &mut self.parties {
                if let Some(obs) = &mut ps.obs {
                    for ev in obs.drain(..) {
                        ctrl.observe(&ev);
                    }
                }
            }
        }
        self.epoch += 1;
    }

    /// Processes one epoch of deliveries across the shard workers.
    ///
    /// Each shard is a contiguous block of parties; the logical outcome
    /// never depends on how shards map to OS threads, so small epochs run
    /// inline and the worker pool is capped at the core count.
    fn deliver_epoch_parallel(&mut self) -> u64 {
        let n = self.config.n as u64;
        let epoch = self.epoch;
        let workload: usize = self.parties.iter().map(|p| p.inbox.messages()).sum();
        if self.workers() == 1 || workload < 256 {
            let mut done = 0;
            for (p, ps) in self.parties.iter_mut().enumerate() {
                done += ps.drain_epoch(PartyId(p), n, epoch, u64::MAX);
            }
            return done;
        }
        let chunk = self.chunk_width();
        let mut first = 0;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.k);
            for shard in self.parties.chunks_mut(chunk) {
                let base = first;
                first += shard.len();
                handles.push(scope.spawn(move || {
                    let mut done = 0;
                    for (i, ps) in shard.iter_mut().enumerate() {
                        done += ps.drain_epoch(PartyId(base + i), n, epoch, u64::MAX);
                    }
                    done
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .sum()
        })
    }

    /// Exact-budget fallback: delivers at most `limit` messages
    /// sequentially in party order. Used only when the remaining step
    /// budget is smaller than the epoch, so `StepLimit` stops are exact
    /// and identical for every shard count.
    fn deliver_epoch_budgeted(&mut self, limit: u64) -> u64 {
        let n = self.config.n as u64;
        let epoch = self.epoch;
        let mut done = 0;
        for (p, ps) in self.parties.iter_mut().enumerate() {
            done += ps.drain_epoch(PartyId(p), n, epoch, limit - done);
            if done == limit {
                break;
            }
        }
        done
    }

    /// Phase 1 of a crash-recovery: the node comes back up (deliveries
    /// stop counting as `dropped_crashed`), but its pre-crash session
    /// state is retired — a recovered party rejoins with amnesia, and
    /// traffic arriving before the respawn early-buffers for replay.
    fn revive(&mut self, party: PartyId, at: u64, session: &SessionId) {
        let ps = &mut self.parties[party.0];
        ps.node.recover();
        ps.node.retire_session(session);
        if let Some(sink) = &mut self.sink {
            sink.record(TraceEvent::Recover {
                step: self.steps,
                vtime: at,
                party,
            });
        }
    }

    /// Fires due crash-recoveries against each plan party's own virtual
    /// clock: phase 1 (revive) at the plan time, phase 2 (respawn the
    /// stored instance, replaying the early buffer) after
    /// [`REJOIN_GRACE`]. With `force`, fast-forwards every party's clock
    /// past the last plan and fires everything — the would-be-quiescence
    /// path, which also covers order-only schedulers with no clock.
    /// Returns whether anything fired (the caller runs a barrier so the
    /// respawn's sends become deliverable).
    fn fire_recoveries(&mut self, force: bool) -> bool {
        if self.recoveries.is_empty() {
            return false;
        }
        if force {
            let target = self
                .recoveries
                .iter()
                .map(|r| r.at.saturating_add(REJOIN_GRACE))
                .max()
                .unwrap_or(0);
            for ps in &mut self.parties {
                ps.scheduler.fast_forward(target);
            }
        }
        let mut changed = false;
        for i in 0..self.recoveries.len() {
            let plan = &self.recoveries[i];
            let (party, at, revived) = (plan.party, plan.at, plan.revived);
            if revived {
                continue;
            }
            let due = self.parties[party.0]
                .scheduler
                .virtual_now()
                .is_some_and(|vnow| at <= vnow);
            if due {
                let session = self.recoveries[i].session.clone();
                self.revive(party, at, &session);
                self.recoveries[i].revived = true;
                changed = true;
            }
        }
        let n = self.config.n as u64;
        let epoch = self.epoch;
        let mut i = 0;
        while i < self.recoveries.len() {
            let plan = &self.recoveries[i];
            let due = plan.revived
                && self.parties[plan.party.0]
                    .scheduler
                    .virtual_now()
                    .is_some_and(|vnow| plan.at.saturating_add(REJOIN_GRACE) <= vnow);
            if due {
                let plan = self.recoveries.remove(i);
                if let Some(instance) = plan.instance {
                    let ps = &mut self.parties[plan.party.0];
                    ps.scratch = ps.node.spawn(plan.session, instance);
                    ps.flush_sends(plan.party, n, epoch, None);
                }
                changed = true;
            } else {
                i += 1;
            }
        }
        if force {
            // Unconditional fallback: schedulers without a virtual clock
            // never report `due`, but the rejoin must still happen before
            // the run can be called quiescent.
            let plans = std::mem::take(&mut self.recoveries);
            for plan in plans {
                if !plan.revived {
                    self.revive(plan.party, plan.at, &plan.session);
                }
                if let Some(instance) = plan.instance {
                    let ps = &mut self.parties[plan.party.0];
                    ps.scratch = ps.node.spawn(plan.session, instance);
                    ps.flush_sends(plan.party, n, epoch, None);
                }
                changed = true;
            }
        }
        changed
    }

    fn report(&self, stop: StopReason) -> RunReport {
        RunReport {
            stop,
            steps: self.steps,
            metrics: self.metrics(),
            trace: self
                .sink
                .as_ref()
                .map(|s| crate::trace::summarize(s.as_ref())),
        }
    }
}

/// Derives party `p`'s scheduler RNG — a stream distinct from the node
/// RNGs ([`node_rng`](crate::runtime)) and shared by every shard count.
fn shard_sched_rng(seed: u64, party: usize) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(
        seed.wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(party as u64)
            .wrapping_add(0x5EED_0000),
    )
}

impl Runtime for ShardedSimRuntime {
    fn config(&self) -> &NetConfig {
        &self.config
    }

    fn spawn(&mut self, party: PartyId, session: SessionId, instance: Box<dyn Instance>) {
        self.pending_spawns.push((party, session, instance));
    }

    fn crash(&mut self, party: PartyId) {
        self.parties[party.0].node.crash();
        if let Some(sink) = &mut self.sink {
            sink.record(TraceEvent::Crash {
                step: self.steps,
                party,
            });
        }
    }

    fn run(&mut self, max_steps: u64) -> RunReport {
        if let Some(sink) = &mut self.sink {
            sink.record(TraceEvent::EpisodeStart { step: self.steps });
        }
        self.apply_spawns();
        self.merge_barrier();
        let mut run_steps = 0;
        let reason = loop {
            if self.fire_recoveries(false) {
                self.merge_barrier();
            }
            if self.pending_len() == 0 {
                if !self.recoveries.is_empty() && self.fire_recoveries(true) {
                    self.merge_barrier();
                    continue;
                }
                break StopReason::Quiescent;
            }
            if run_steps >= max_steps {
                break StopReason::StepLimit;
            }
            let remaining = max_steps - run_steps;
            let workload = self.pending_len() as u64;
            let done = if workload > remaining {
                self.deliver_epoch_budgeted(remaining)
            } else {
                self.deliver_epoch_parallel()
            };
            run_steps += done;
            self.steps += done;
            self.merge_barrier();
        };
        if let Some(sink) = &mut self.sink {
            sink.record(TraceEvent::EpisodeEnd { step: self.steps });
        }
        self.report(reason)
    }

    fn output(&self, party: PartyId, session: &SessionId) -> Option<&Payload> {
        self.parties[party.0].node.output(session)
    }

    fn metrics(&self) -> Metrics {
        // Merged in party order, so per-kind ordering is a pure function
        // of the schedule — identical for every shard count.
        let mut merged = Metrics::default();
        for ps in &self.parties {
            merged.merge(&ps.metrics);
            let (reused, allocated) = ps.inbox.pool_stats();
            merged.pool_reused += reused;
            merged.pool_alloc += allocated;
        }
        merged
    }

    fn retire_session(&mut self, party: PartyId, session: &SessionId) -> bool {
        self.parties[party.0].node.retire_session(session)
    }

    fn schedule_recover(
        &mut self,
        party: PartyId,
        at_vtime: u64,
        session: SessionId,
        instance: Box<dyn Instance>,
    ) -> bool {
        self.recoveries.push(RecoverPlan {
            party,
            at: at_vtime,
            session,
            instance: Some(instance),
            revived: false,
        });
        true
    }

    fn set_trace(&mut self, mode: TraceMode) {
        self.sink = mode.build();
        let on = self.sink.is_some();
        for ps in &mut self.parties {
            ps.events = if on { Some(Vec::new()) } else { None };
        }
    }

    fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        for ps in &mut self.parties {
            ps.events = None;
        }
        self.sink.take()
    }

    fn install_adaptive(&mut self, ctrl: SharedAdaptive) -> bool {
        for ps in &mut self.parties {
            ps.obs = Some(Vec::new());
        }
        self.adaptive = Some(ctrl);
        true
    }

    fn adaptive_handle(&self) -> Option<SharedAdaptive> {
        self.adaptive.clone()
    }

    fn backend_name(&self) -> &'static str {
        "sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SessionTag;
    use crate::instance::Context;
    use crate::runtime::{runtime_by_name, RuntimeExt};

    fn sid() -> SessionId {
        SessionId::root().child(SessionTag::new("t", 0))
    }

    /// Flood: every party sends `rounds` waves of pings; outputs when it
    /// received `n * rounds` pings.
    struct Flood {
        rounds: u32,
        sent: u32,
        heard: usize,
    }
    impl Flood {
        fn new(rounds: u32) -> Self {
            Flood {
                rounds,
                sent: 0,
                heard: 0,
            }
        }
    }
    impl Instance for Flood {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.sent = 1;
            ctx.send_all(0u32);
        }
        fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
            self.heard += 1;
            if self.heard.is_multiple_of(ctx.n()) && self.sent < self.rounds {
                self.sent += 1;
                ctx.send_all(self.sent);
            }
            if self.heard == ctx.n() * self.rounds as usize {
                ctx.output(self.heard);
            }
        }
    }

    fn flood_run(seed: u64, k: usize) -> ShardedSimRuntime {
        let mut rt = ShardedSimRuntime::new(NetConfig::new(4, 1, seed), k);
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Flood::new(3)));
        }
        rt.run(1_000_000);
        rt
    }

    #[test]
    fn flood_reaches_quiescence_and_outputs() {
        for k in [1, 2, 4] {
            let rt = flood_run(3, k);
            for p in 0..4 {
                assert_eq!(
                    rt.output_as::<usize>(PartyId(p), &sid()),
                    Some(&12),
                    "k={k} party {p}"
                );
            }
        }
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_shard_count_free() {
        // Same seed: identical traces for every k — and across repeated
        // runs, regardless of thread interleaving.
        let trace = |seed: u64, k: usize| {
            let mut rt = ShardedSimRuntime::new(NetConfig::new(4, 1, seed), k);
            rt.enable_trace();
            for p in 0..4 {
                rt.spawn(PartyId(p), sid(), Box::new(Flood::new(3)));
            }
            rt.run(1_000_000);
            rt.trace().to_vec()
        };
        let reference = trace(9, 1);
        assert!(!reference.is_empty());
        for k in [1, 2, 3, 4] {
            assert_eq!(trace(9, k), reference, "k={k}");
        }
        assert_ne!(trace(10, 2), reference, "different seeds should differ");
    }

    #[test]
    fn metrics_identical_across_shard_counts() {
        let reference = flood_run(5, 1).metrics();
        for k in [2, 4] {
            let m = flood_run(5, k).metrics();
            assert_eq!(m.sent, reference.sent, "k={k}");
            assert_eq!(m.delivered, reference.delivered, "k={k}");
            assert_eq!(
                m.kinds().collect::<Vec<_>>(),
                reference.kinds().collect::<Vec<_>>(),
                "k={k}: per-kind counts and first-seen order"
            );
        }
    }

    #[test]
    fn crash_before_run_retracts_initial_sends() {
        let mut rt = ShardedSimRuntime::new(NetConfig::new(4, 1, 1), 2);
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Flood::new(1)));
        }
        rt.crash(PartyId(3));
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        assert!(rt.output(PartyId(3), &sid()).is_none());
        assert_eq!(report.metrics.sent, 12, "three live broadcasters");
        assert_eq!(report.metrics.dropped_crashed, 3, "deliveries to P3");
    }

    #[test]
    fn step_limit_is_exact_and_resumable() {
        let mut rt = ShardedSimRuntime::new(NetConfig::new(4, 1, 1), 2);
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Flood::new(3)));
        }
        let report = rt.run(3);
        assert_eq!(report.stop, StopReason::StepLimit);
        assert_eq!(report.steps, 3, "budgeted epochs stop exactly");
        // Resume to quiescence; totals match an unbudgeted run.
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        let full = flood_run(1, 2).metrics();
        assert_eq!(report.metrics.sent, full.sent);
        assert_eq!(report.metrics.delivered, full.delivered);
    }

    #[test]
    fn nodes_persist_across_runs() {
        // Spawn a second session after the first run: outputs from the
        // first session stay readable and the second runs to completion
        // on the same nodes (unlike threaded episodes).
        let other = SessionId::root().child(SessionTag::new("second", 0));
        let mut rt = ShardedSimRuntime::new(NetConfig::new(4, 1, 8), 2);
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Flood::new(2)));
        }
        rt.run(1_000_000);
        for p in 0..4 {
            rt.spawn(PartyId(p), other.clone(), Box::new(Flood::new(1)));
        }
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        for p in 0..4 {
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid()), Some(&8));
            assert_eq!(rt.output_as::<usize>(PartyId(p), &other), Some(&4));
        }
    }

    #[test]
    fn outboxes_and_batch_deques_recycle() {
        /// Three pings per wave, so each per-pair channel carries a
        /// multi-envelope batch — what feeds the spare-deque pool the
        /// outboxes refill from.
        struct Burst {
            waves: u32,
            heard: usize,
        }
        impl Instance for Burst {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for _ in 0..3 {
                    ctx.send_all(0u32);
                }
            }
            fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
                self.heard += 1;
                if self.heard.is_multiple_of(3 * ctx.n()) && self.waves > 0 {
                    self.waves -= 1;
                    for _ in 0..3 {
                        ctx.send_all(0u32);
                    }
                }
            }
        }
        let mut rt = ShardedSimRuntime::new(NetConfig::new(4, 1, 3), 2);
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Burst { waves: 3, heard: 0 }));
        }
        rt.run(1_000_000);
        let m = rt.metrics();
        assert!(
            m.pool_reused > 0,
            "steady-state bursts must reuse pooled buffers (reused {}, alloc {})",
            m.pool_reused,
            m.pool_alloc
        );
    }

    #[test]
    fn message_conservation_at_quiescence() {
        let rt = flood_run(7, 4);
        let m = rt.metrics();
        assert_eq!(m.sent, m.delivered + m.dropped_shunned + m.dropped_crashed);
        assert_eq!(m.sent_by_kind("t"), m.sent);
        assert_eq!(rt.pending_len(), 0);
    }

    #[test]
    fn shard_count_clamps_to_n() {
        let rt = ShardedSimRuntime::new(NetConfig::new(4, 1, 0), 64);
        assert_eq!(rt.shards(), 4);
    }

    #[test]
    #[should_panic(expected = "optimal resilience")]
    fn rejects_insufficient_n() {
        let _ = ShardedSimRuntime::new(NetConfig::new(3, 1, 0), 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn rejects_zero_shards() {
        let _ = ShardedSimRuntime::new(NetConfig::new(4, 1, 0), 0);
    }

    #[test]
    fn runtime_by_name_builds_sharded_variants() {
        let config = NetConfig::new(4, 1, 0);
        for name in ["sharded:1", "sharded:2", "sharded:4", "sharded:2:lifo"] {
            let rt = runtime_by_name(name, config).unwrap_or_else(|| panic!("{name} must parse"));
            assert_eq!(rt.backend_name(), "sharded", "{name}");
        }
        for name in [
            "sharded",
            "sharded:",
            "sharded:0",
            "sharded:abc",
            "sharded:2:bogus",
            "sharded:-1",
        ] {
            assert!(runtime_by_name(name, config).is_none(), "{name}");
        }
    }

    #[test]
    fn per_party_schedulers_change_the_schedule() {
        let trace_with = |sched: &str| {
            let mut rt =
                ShardedSimRuntime::with_scheduler_factory(NetConfig::new(4, 1, 2), 2, |_| {
                    crate::scheduler_by_name(sched).unwrap()
                });
            rt.enable_trace();
            for p in 0..4 {
                rt.spawn(PartyId(p), sid(), Box::new(Flood::new(3)));
            }
            rt.run(1_000_000);
            rt.trace().to_vec()
        };
        assert_ne!(trace_with("fifo"), trace_with("lifo"));
        assert_eq!(trace_with("fifo"), trace_with("fifo"));
    }
}
