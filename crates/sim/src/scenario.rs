//! Declarative adversarial scenarios: corruption plans, schedulers and
//! backends as *data*.
//!
//! The paper's optimal-resilience claims are claims about every adversary
//! that controls scheduling **and** up to `t` parties' behaviour. This
//! module turns one such adversary into a value — a [`Scenario`] — that
//! parses from a string exactly like [`scheduler_by_name`] and
//! [`runtime_by_name`] specs do:
//!
//! ```text
//! scenario:n=16,t=3,corrupt=silent@1;garbage@5,sched=starve:1,rt=sharded:4
//! ```
//!
//! Grammar (the `scenario:` prefix is optional; [`Scenario`]'s `Display`
//! emits the canonical form without it):
//!
//! ```text
//! scenario := ["scenario:"] field ("," field)*
//! field    := "n=" usize | "t=" usize | "corrupt=" plan
//!           | "sched=" scheduler-spec | "rt=" runtime-spec
//! plan     := entry (";" entry)*
//! entry    := fault "@" party | "adaptive:" attack-name [":" args] "@*"
//! fault    := "silent" | "crash" | "recover:" vtime | "mute-after:" events
//!           | "garbage" [":" budget] | "equivocate" [":" budget]
//!           | attack-name [":" args]          (resolved via AttackRegistry)
//! ```
//!
//! An `adaptive:<name>[:args]@*` entry binds an *adaptive adversary* (see
//! [`crate::adaptive`]) to the whole system rather than one party: the
//! named policy observes delivered traffic through the runtime's
//! observation hook and decides who to corrupt mid-run, capped at `t`
//! distinct victims (statically corrupted parties count against the cap).
//! At most one adaptive entry per scenario; adaptive plans require a
//! deterministic backend (`rt=threaded` and `rt=proc` are rejected).
//!
//! `t` defaults to `⌊(n−1)/3⌋`, `sched` to `random`, `rt` to `sim`. Only
//! the five field keys above start a new field: any other comma-separated
//! token — with or without an `=` — is glued back onto the preceding
//! value, so scheduler specs need no escaping (`sched=starve:1,3` and
//! `sched=net:lat=1..20,partition=p50,heal=200` both parse). Parsing validates
//! everything it can without a registry: `n ≥ 3t + 1`, at most `t` distinct
//! corrupted parties, all ids in range, scheduler and runtime specs
//! resolvable; [`Scenario::validate_attacks`] additionally checks named
//! attacks against an [`AttackRegistry`].
//!
//! Generic faults map onto the behaviours of [`crate::behaviors`]; named
//! attacks are protocol-specific and resolved through an
//! [`AttackRegistry`] that protocol crates populate (`aft-ba`, `aft-svss`
//! export `register_attacks`; `aft-core` assembles the standard registry).
//! Attack factories are *episode-aware*: multi-phase stacks (SVSS
//! share→rec) pass the previous episode's per-party output as a carry, so
//! reconstruction attacks can be built from the bundle the corrupted party
//! legitimately obtained in the share phase.
//!
//! [`ScenarioMatrix`] sweeps a protocol stack across the cross-product of
//! backends × schedulers × fault plans × seeds, in parallel via
//! [`run_trials`](crate::run_trials); each cell re-parses its scenario
//! string, so every result is reproducible from `(seed, scenario string)`
//! alone.
//!
//! [`scheduler_by_name`]: crate::scheduler_by_name
//! [`runtime_by_name`]: crate::runtime_by_name

use crate::behaviors::{Equivocator, GarbageInstance, MuteAfter, SilentInstance};
use crate::ids::{PartyId, SessionId};
use crate::instance::Instance;
use crate::payload::Payload;
use crate::runtime::{runtime_by_name, Metrics, NetConfig, Runtime};
use std::collections::BTreeMap;
use std::fmt;

/// Default message budget of the `garbage` fault.
pub const DEFAULT_GARBAGE_BUDGET: u64 = 32;
/// Default event budget of the `equivocate` fault.
pub const DEFAULT_EQUIVOCATE_BUDGET: u64 = 16;

/// How one corrupted party misbehaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// Never sends anything ([`SilentInstance`]).
    Silent,
    /// Whole-party crash from the start ([`Runtime::crash`] before the
    /// first run, so initial sends are retracted on every backend).
    Crash,
    /// Crash from the start, then recover at the given virtual time: the
    /// node comes back up with its session state retired and a fresh
    /// honest instance respawns after a short grace period
    /// ([`Runtime::schedule_recover`]). Requires a `sched=net:` scheduler
    /// — virtual time is what `@<vtime>` is measured in.
    Recover(u64),
    /// Honest for the given number of events, then silent ([`MuteAfter`]
    /// wrapping the stack's honest instance).
    MuteAfter(u64),
    /// Sprays junk payloads at random parties up to the given budget
    /// ([`GarbageInstance`]).
    Garbage(u64),
    /// Sends *conflicting* junk to different parties for up to the given
    /// number of events ([`Equivocator`]).
    Equivocate(u64),
    /// A protocol-specific attack resolved by name through an
    /// [`AttackRegistry`].
    Attack {
        /// Registered attack name (lowercase kebab-case).
        name: String,
        /// Attack-defined argument string (text after the first `:`).
        args: String,
    },
}

impl FaultSpec {
    /// Parses one fault spec (the part of a plan entry before `@`).
    pub fn parse(spec: &str) -> Option<FaultSpec> {
        let (head, args) = match spec.split_once(':') {
            Some((h, a)) => (h, a),
            None => (spec, ""),
        };
        match head {
            "silent" => args.is_empty().then_some(FaultSpec::Silent),
            "crash" => args.is_empty().then_some(FaultSpec::Crash),
            "recover" => Some(FaultSpec::Recover(args.parse().ok()?)),
            "mute-after" => Some(FaultSpec::MuteAfter(args.parse().ok()?)),
            "garbage" => Some(FaultSpec::Garbage(if args.is_empty() {
                DEFAULT_GARBAGE_BUDGET
            } else {
                args.parse().ok()?
            })),
            "equivocate" => Some(FaultSpec::Equivocate(if args.is_empty() {
                DEFAULT_EQUIVOCATE_BUDGET
            } else {
                args.parse().ok()?
            })),
            _ => valid_attack_name(head).then(|| FaultSpec::Attack {
                name: head.to_string(),
                args: args.to_string(),
            }),
        }
    }
}

/// Attack names (static and adaptive) are lowercase kebab-case: a
/// lowercase letter, then lowercase letters, digits or `-`.
fn valid_attack_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next().is_some_and(|c| c.is_ascii_lowercase())
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpec::Silent => write!(f, "silent"),
            FaultSpec::Crash => write!(f, "crash"),
            FaultSpec::Recover(vt) => write!(f, "recover:{vt}"),
            FaultSpec::MuteAfter(k) => write!(f, "mute-after:{k}"),
            FaultSpec::Garbage(b) => write!(f, "garbage:{b}"),
            FaultSpec::Equivocate(b) => write!(f, "equivocate:{b}"),
            FaultSpec::Attack { name, args } if args.is_empty() => write!(f, "{name}"),
            FaultSpec::Attack { name, args } => write!(f, "{name}:{args}"),
        }
    }
}

/// An adaptive-adversary binding: `adaptive:<name>[:args]@*` in the
/// grammar. Resolved through [`AttackRegistry::build_adaptive`] at deploy
/// time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveSpec {
    /// Registered adaptive-attack name (lowercase kebab-case).
    pub name: String,
    /// Policy-defined argument string (text after the second `:`).
    pub args: String,
}

impl fmt::Display for AdaptiveSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.args.is_empty() {
            write!(f, "adaptive:{}@*", self.name)
        } else {
            write!(f, "adaptive:{}:{}@*", self.name, self.args)
        }
    }
}

/// One corrupted party and its assigned fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corruption {
    /// The corrupted party.
    pub party: PartyId,
    /// Its behaviour.
    pub fault: FaultSpec,
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.fault, self.party.0)
    }
}

/// A declarative adversarial scenario: system size, corruption plan,
/// scheduler and backend. See the [module docs](self) for the grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Number of parties.
    pub n: usize,
    /// Fault threshold (`n ≥ 3t + 1`).
    pub t: usize,
    /// Corrupted parties, sorted by id; at most `t` of them.
    pub corruptions: Vec<Corruption>,
    /// The adaptive adversary bound to the whole system, if any
    /// (`adaptive:<name>[:args]@*` in the plan; at most one).
    pub adaptive: Option<AdaptiveSpec>,
    /// Scheduler spec, resolvable by [`scheduler_by_name`](crate::scheduler_by_name).
    pub sched: String,
    /// Backend spec: `sim`, `wire`, `sharded:<k>`, or
    /// `threaded[:<poll_ms>]` (the scheduler is carried separately in
    /// `sched`).
    pub rt: String,
}

impl Scenario {
    /// An all-honest scenario on the simulator with the random scheduler.
    pub fn honest(n: usize, t: usize) -> Scenario {
        Scenario {
            n,
            t,
            corruptions: Vec::new(),
            adaptive: None,
            sched: "random".to_string(),
            rt: "sim".to_string(),
        }
    }

    /// Parses and validates a scenario string. Returns `None` on grammar
    /// errors or failed validation (see [`Scenario::validate`]).
    pub fn parse(spec: &str) -> Option<Scenario> {
        let body = spec.strip_prefix("scenario:").unwrap_or(spec);
        // Split into `key=value` fields. Only the known field keys start
        // a new field; any other token — even one containing an `=` — is
        // a continuation of the previous value, so scheduler specs like
        // `starve:1,3` and `net:lat=1..20,partition=p50,heal=200` survive
        // the comma split unescaped.
        const KEYS: [&str; 5] = ["n", "t", "corrupt", "sched", "rt"];
        let mut fields: Vec<(&str, String)> = Vec::new();
        for tok in body.split(',') {
            match tok.split_once('=') {
                Some((k, v)) if KEYS.contains(&k.trim()) => {
                    fields.push((k.trim(), v.trim().to_string()))
                }
                _ => {
                    let last = fields.last_mut()?;
                    last.1.push(',');
                    last.1.push_str(tok.trim());
                }
            }
        }
        let mut n = None;
        let mut t = None;
        let mut corrupt = String::new();
        let mut sched = "random".to_string();
        let mut rt = "sim".to_string();
        for (k, v) in fields {
            match k {
                "n" => n = Some(v.parse().ok()?),
                "t" => t = Some(v.parse().ok()?),
                "corrupt" => corrupt = v,
                "sched" => sched = v,
                "rt" => rt = v,
                _ => return None,
            }
        }
        let n: usize = n?;
        let t: usize = match t {
            Some(t) => t,
            None => n.saturating_sub(1) / 3,
        };
        let mut corruptions = Vec::new();
        let mut adaptive = None;
        if !corrupt.is_empty() {
            for part in corrupt.split(';') {
                let (fault, party) = part.rsplit_once('@')?;
                if party.trim() == "*" {
                    // `adaptive:<name>[:args]@*` binds the adaptive
                    // adversary to the whole system; at most one per plan.
                    let rest = fault.trim().strip_prefix("adaptive:")?;
                    let (name, args) = match rest.split_once(':') {
                        Some((n, a)) => (n, a),
                        None => (rest, ""),
                    };
                    if !valid_attack_name(name) || adaptive.is_some() {
                        return None;
                    }
                    adaptive = Some(AdaptiveSpec {
                        name: name.to_string(),
                        args: args.to_string(),
                    });
                    continue;
                }
                corruptions.push(Corruption {
                    party: PartyId(party.trim().parse().ok()?),
                    fault: FaultSpec::parse(fault.trim())?,
                });
            }
        }
        corruptions.sort_by_key(|c| c.party.0);
        let scenario = Scenario {
            n,
            t,
            corruptions,
            adaptive,
            sched,
            rt,
        };
        scenario.validate().ok()?;
        Some(scenario)
    }

    /// Checks everything checkable without an attack registry: resilience
    /// bound, corruption budget and ids, scheduler and runtime specs.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("n must be positive".into());
        }
        if self.n < 3 * self.t + 1 {
            return Err(format!(
                "n={} violates optimal resilience n >= 3t+1 (t={})",
                self.n, self.t
            ));
        }
        if self.corruptions.len() > self.t {
            return Err(format!(
                "{} corruptions exceed the fault threshold t={}",
                self.corruptions.len(),
                self.t
            ));
        }
        for pair in self.corruptions.windows(2) {
            if pair[0].party == pair[1].party {
                return Err(format!("party {} corrupted twice", pair[0].party.0));
            }
        }
        for c in &self.corruptions {
            if c.party.0 >= self.n {
                return Err(format!("corrupt party {} out of range", c.party.0));
            }
            if let FaultSpec::Attack { name, .. } = &c.fault {
                if name == "adaptive" {
                    return Err(format!(
                        "adaptive plans bind to the whole system: write \
                         corrupt=adaptive:<name>@* instead of @{}",
                        c.party.0
                    ));
                }
            }
        }
        if let Some(spec) = &self.adaptive {
            if !valid_attack_name(&spec.name) {
                return Err(format!("invalid adaptive attack name {:?}", spec.name));
            }
            let nondeterministic = ["threaded", "proc"]
                .iter()
                .any(|family| self.rt == *family || self.rt.starts_with(&format!("{family}:")));
            if nondeterministic {
                return Err(format!(
                    "adaptive:{}@* needs a deterministic backend to honor replay: use \
                     rt=sim, rt=async, rt=sharded:<k> or rt=wire ({} schedules are \
                     OS-timing dependent)",
                    spec.name,
                    self.rt.split(':').next().unwrap_or(&self.rt)
                ));
            }
        }
        if crate::scheduler_by_name(&self.sched).is_none() {
            // Name the mistake: a known family with malformed arguments
            // gets that family's grammar example; an unknown family gets
            // the list of families. Mirrors the rt=wire:<args> hint below.
            let family = self.sched.split(':').next().unwrap_or(&self.sched);
            return Err(
                match crate::ALL_SCHEDULERS.iter().find(|f| f.name == family) {
                    Some(f) => format!(
                        "scheduler {:?} has malformed arguments for the {:?} family \
                         (grammar example: sched={})",
                        self.sched, f.name, f.example
                    ),
                    None => {
                        let names: Vec<&str> =
                            crate::ALL_SCHEDULERS.iter().map(|f| f.name).collect();
                        format!(
                            "unknown scheduler {:?} (families: {})",
                            self.sched,
                            names.join(", ")
                        )
                    }
                },
            );
        }
        if let Some(spec) = crate::net::NetSpec::parse(&self.sched) {
            if let Some(crate::net::PartitionSpec::Explicit(cut)) = &spec.partition {
                if cut.len() > self.t {
                    return Err(format!(
                        "partition cut of {} parties exceeds the fault threshold t={}: \
                         a cut isolating more than t parties can block termination",
                        cut.len(),
                        self.t
                    ));
                }
                if let Some(p) = cut.iter().find(|p| p.0 >= self.n) {
                    return Err(format!(
                        "partition cut party {} out of range (n={})",
                        p.0, self.n
                    ));
                }
            }
        } else if let Some(c) = self
            .corruptions
            .iter()
            .find(|c| matches!(c.fault, FaultSpec::Recover(_)))
        {
            return Err(format!(
                "recover@{} is measured in virtual time: use a sched=net: scheduler \
                 (e.g. sched=net:lat=1..8)",
                c.party.0
            ));
        }
        if self.rt == "proc" || self.rt.starts_with("proc:") {
            if let Some(c) = self
                .corruptions
                .iter()
                .find(|c| matches!(c.fault, FaultSpec::Recover(_)))
            {
                return Err(format!(
                    "recover:<vt>@{} on rt=proc is supervisor-driven: run the scenario \
                     through exp_deployment (which maps it onto SIGKILL + respawn) — \
                     the in-process proc stand-in has no virtual clock",
                    c.party.0
                ));
            }
        }
        let rt_ok = match self.rt.as_str() {
            "sim" | "threaded" | "wire" | "async" | "proc" => true,
            other => {
                if other.starts_with("wire:") || other == "wire:" {
                    // The most likely authoring mistake on wire cells:
                    // schedulers (and anything else) do not nest inside
                    // `rt=`; reject with a targeted message instead of a
                    // runtime panic deep inside a sweep.
                    return Err(format!(
                        "runtime {other:?} takes no arguments: write rt=wire and put the \
                         scheduler in sched= (wire cells compose as wire:<sched> internally)"
                    ));
                }
                if other.starts_with("async:") || other == "async:" {
                    return Err(format!(
                        "runtime {other:?} takes no arguments: write rt=async and put the \
                         scheduler in sched= (async cells compose as async:<sched> internally)"
                    ));
                }
                if let Some(k) = other.strip_prefix("proc:") {
                    match k.parse::<usize>() {
                        Ok(k) if k == self.n => true,
                        Ok(k) => {
                            return Err(format!(
                                "rt=proc:{k} disagrees with n={}: the deployment runs \
                                 exactly one process per party — write rt=proc (or \
                                 rt=proc:{})",
                                self.n, self.n
                            ));
                        }
                        Err(_) => false,
                    }
                } else if let Some(k) = other.strip_prefix("sharded:") {
                    k.parse::<usize>().is_ok_and(|k| k > 0)
                } else if let Some(ms) = other.strip_prefix("threaded:") {
                    ms.parse::<u64>().is_ok()
                } else {
                    false
                }
            }
        };
        if !rt_ok {
            return Err(format!(
                "unknown runtime {:?} (expected sim, wire, async, sharded:<k>, \
                 proc[:<n>], or threaded[:<poll_ms>])",
                self.rt
            ));
        }
        Ok(())
    }

    /// Checks that every [`FaultSpec::Attack`] in the plan resolves in
    /// `registry` (by name only — argument errors surface at deploy time).
    pub fn validate_attacks(&self, registry: &AttackRegistry) -> Result<(), String> {
        for c in &self.corruptions {
            if let FaultSpec::Attack { name, .. } = &c.fault {
                if !registry.contains(name) {
                    return Err(format!("unregistered attack {name:?}"));
                }
            }
        }
        if let Some(spec) = &self.adaptive {
            if !registry.contains_adaptive(&spec.name) {
                return Err(format!("unregistered adaptive attack {:?}", spec.name));
            }
        }
        Ok(())
    }

    /// The full [`runtime_by_name`](crate::runtime_by_name) spec this
    /// scenario runs on: `rt` composed with `sched` on the backends that
    /// honor schedulers (`threaded` ignores them — the OS schedules).
    pub fn backend_name(&self) -> String {
        match self.rt.as_str() {
            "sim" => format!("sim:{}", self.sched),
            "wire" => format!("wire:{}", self.sched),
            "async" => format!("async:{}", self.sched),
            rt if rt.starts_with("sharded:") => format!("{rt}:{}", self.sched),
            rt => rt.to_string(),
        }
    }

    /// The [`NetConfig`] of a run of this scenario with `seed`.
    pub fn config(&self, seed: u64) -> NetConfig {
        NetConfig::new(self.n, self.t, seed)
    }

    /// Builds the scenario's runtime for one seeded run.
    ///
    /// # Panics
    ///
    /// Panics if the scenario was constructed by hand with specs that
    /// don't pass [`Scenario::validate`] (parsed scenarios always do).
    pub fn runtime(&self, seed: u64) -> Box<dyn Runtime> {
        let name = self.backend_name();
        runtime_by_name(&name, self.config(seed))
            .unwrap_or_else(|| panic!("invalid scenario backend {name:?}"))
    }

    /// The fault assigned to `party`, if corrupted.
    pub fn fault_of(&self, party: PartyId) -> Option<&FaultSpec> {
        self.corruptions
            .iter()
            .find(|c| c.party == party)
            .map(|c| &c.fault)
    }

    /// Whether `party` is corrupted in this scenario.
    pub fn is_corrupt(&self, party: PartyId) -> bool {
        self.fault_of(party).is_some()
    }

    /// Ids of the honest (non-corrupted) parties, in order.
    pub fn honest_parties(&self) -> impl Iterator<Item = PartyId> + '_ {
        (0..self.n).map(PartyId).filter(|p| !self.is_corrupt(*p))
    }

    /// Deploys one episode of a protocol stack under this scenario's
    /// corruption plan.
    ///
    /// For every party, spawns at `session` either the stack's honest
    /// instance (from `honest(party, carry)`) or the fault's instance:
    /// generic faults use the behaviours of [`crate::behaviors`]
    /// (`mute-after` wraps the honest instance), named attacks are built
    /// by `registry` with an episode-aware [`AttackCtx`]. `crash` spawns
    /// the honest instance and then crashes the party (idempotent across
    /// episodes; a crash before the first run retracts initial sends on
    /// every backend).
    ///
    /// `carries[p]` is party `p`'s output from the previous episode (pass
    /// `&[]` for the first); it is forwarded both to `honest` and to
    /// attack factories, which is how reconstruction attacks receive the
    /// share bundle the corrupted party obtained honestly.
    pub fn deploy_episode(
        &self,
        rt: &mut dyn Runtime,
        registry: &AttackRegistry,
        episode: &str,
        session: &SessionId,
        carries: &[Option<Payload>],
        mut honest: impl FnMut(PartyId, Option<&Payload>) -> Box<dyn Instance>,
    ) -> Result<(), String> {
        let config = *rt.config();
        if config.n != self.n || config.t != self.t {
            return Err(format!(
                "runtime is configured for n={}/t={}, scenario wants n={}/t={}",
                config.n, config.t, self.n, self.t
            ));
        }
        // Adaptive adversary: build the policy + victim ledger once and
        // install it; later episodes of the same runtime reuse the handle,
        // so the t-cap spans the whole multi-episode run.
        let adaptive_ctrl: Option<crate::adaptive::SharedAdaptive> = match &self.adaptive {
            None => None,
            Some(spec) => {
                let ctrl = match rt.adaptive_handle() {
                    Some(ctrl) => ctrl,
                    None => {
                        let actx = AdaptiveCtx {
                            n: self.n,
                            t: self.t,
                            seed: config.seed,
                            args: &spec.args,
                        };
                        let policy =
                            registry.build_adaptive(&spec.name, &actx).ok_or_else(|| {
                                format!(
                                    "adaptive attack {:?} (args {:?}) failed to build for \
                                     episode {episode:?}",
                                    spec.name, spec.args
                                )
                            })?;
                        let mut plan = crate::adaptive::CorruptionPlan::new(self.n, self.t);
                        for c in &self.corruptions {
                            plan.seed_victim(c.party);
                        }
                        let ctrl = std::sync::Arc::new(std::sync::Mutex::new(
                            crate::adaptive::AdaptiveController::new(policy, plan),
                        ));
                        if !rt.install_adaptive(ctrl.clone()) {
                            return Err(format!(
                                "backend {:?} does not support adaptive attacks \
                                 (adaptive:{}@*)",
                                rt.backend_name(),
                                spec.name
                            ));
                        }
                        ctrl
                    }
                };
                ctrl.lock()
                    .expect("adaptive controller lock poisoned")
                    .on_episode(episode);
                Some(ctrl)
            }
        };
        for p in (0..self.n).map(PartyId) {
            let carry = carries.get(p.0).and_then(|c| c.as_ref());
            let instance: Box<dyn Instance> = match self.fault_of(p) {
                None => match &adaptive_ctrl {
                    // Every honest party is wrapped in a transparent shell:
                    // it passes through untouched until the controller
                    // corrupts the party, then acts out the assigned mode.
                    Some(ctrl) => Box::new(crate::adaptive::AdaptiveShell::new(
                        honest(p, carry),
                        ctrl.clone(),
                        p,
                    )),
                    None => honest(p, carry),
                },
                Some(FaultSpec::Silent) => Box::new(SilentInstance),
                Some(FaultSpec::Crash) => {
                    rt.spawn(p, session.clone(), honest(p, carry));
                    rt.crash(p);
                    continue;
                }
                Some(FaultSpec::Recover(at)) => {
                    // Crash like above, but leave a recovery plan with a
                    // fresh honest instance: at virtual time `at` the node
                    // revives with its session state retired, and the
                    // instance respawns after the rejoin grace period.
                    rt.spawn(p, session.clone(), honest(p, carry));
                    rt.crash(p);
                    if !rt.schedule_recover(p, *at, session.clone(), honest(p, carry)) {
                        return Err(format!(
                            "backend {:?} does not support crash-recovery (recover@{})",
                            rt.backend_name(),
                            p.0
                        ));
                    }
                    continue;
                }
                Some(FaultSpec::MuteAfter(k)) => Box::new(MuteAfter::new(honest(p, carry), *k)),
                Some(FaultSpec::Garbage(b)) => Box::new(GarbageInstance::new(*b)),
                Some(FaultSpec::Equivocate(b)) => Box::new(Equivocator::new(*b)),
                Some(FaultSpec::Attack { name, args }) => {
                    let ctx = AttackCtx {
                        party: p,
                        n: self.n,
                        t: self.t,
                        seed: config.seed,
                        args,
                        episode,
                        carry,
                    };
                    match registry.build(name, &ctx) {
                        Some(AttackRole::Instance(inst)) => inst,
                        Some(AttackRole::Honest) => honest(p, carry),
                        None => {
                            return Err(format!(
                                "attack {name:?} (args {args:?}) failed to build for \
                                 episode {episode:?}"
                            ))
                        }
                    }
                }
            };
            rt.spawn(p, session.clone(), instance);
        }
        Ok(())
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={},t={}", self.n, self.t)?;
        if !self.corruptions.is_empty() || self.adaptive.is_some() {
            write!(f, ",corrupt=")?;
            for (i, c) in self.corruptions.iter().enumerate() {
                if i > 0 {
                    write!(f, ";")?;
                }
                write!(f, "{c}")?;
            }
            if let Some(a) = &self.adaptive {
                if !self.corruptions.is_empty() {
                    write!(f, ";")?;
                }
                write!(f, "{a}")?;
            }
        }
        write!(f, ",sched={},rt={}", self.sched, self.rt)
    }
}

/// Everything an attack factory may depend on when building the corrupted
/// party's instance for one episode.
///
/// By convention the scenario stacks place protocol roles at party 0
/// (e.g. the SVSS dealer), so factories that need a role id use
/// `PartyId(0)` unless their `args` say otherwise.
pub struct AttackCtx<'a> {
    /// The corrupted party being deployed.
    pub party: PartyId,
    /// Number of parties.
    pub n: usize,
    /// Fault threshold.
    pub t: usize,
    /// The run's master seed.
    pub seed: u64,
    /// Attack-defined argument string from the fault spec.
    pub args: &'a str,
    /// The episode (leaf session kind) being deployed, e.g. `"ba"`,
    /// `"svss-share"`, `"svss-rec"`.
    pub episode: &'a str,
    /// The party's output from the previous episode, if any.
    pub carry: Option<&'a Payload>,
}

/// What an attack factory contributes to one episode.
pub enum AttackRole {
    /// Run this instance for the corrupted party.
    Instance(Box<dyn Instance>),
    /// This episode is not attacked: run the stack's honest instance.
    Honest,
}

type AttackFactory = Box<dyn Fn(&AttackCtx<'_>) -> Option<AttackRole> + Send + Sync>;

/// Everything an adaptive-attack factory may depend on when building the
/// run's corruption policy (adaptive policies bind to the whole system,
/// not one party — compare [`AttackCtx`]).
pub struct AdaptiveCtx<'a> {
    /// Number of parties.
    pub n: usize,
    /// Fault threshold (the victim cap).
    pub t: usize,
    /// The run's master seed.
    pub seed: u64,
    /// Policy-defined argument string from the scenario spec.
    pub args: &'a str,
}

type AdaptiveFactory =
    Box<dyn Fn(&AdaptiveCtx<'_>) -> Option<Box<dyn crate::adaptive::AdaptiveAttack>> + Send + Sync>;

/// Named protocol-specific attacks, pluggable by protocol crates.
///
/// Factories receive an [`AttackCtx`] and return the corrupted party's
/// role for the episode being deployed, or `None` when the arguments are
/// invalid. `aft-ba` and `aft-svss` export `register_attacks` functions;
/// `aft-core` assembles them into the standard registry used by the
/// conformance suite.
///
/// A second namespace holds *adaptive* attacks ([`AdaptiveAttack`]
/// policies bound via `corrupt=adaptive:<name>@*`); the built-in constant
/// policy `pin` ([`PinPolicy`]) is pre-registered in every registry.
///
/// [`AdaptiveAttack`]: crate::adaptive::AdaptiveAttack
/// [`PinPolicy`]: crate::adaptive::PinPolicy
pub struct AttackRegistry {
    factories: BTreeMap<&'static str, AttackFactory>,
    adaptive: BTreeMap<&'static str, AdaptiveFactory>,
}

impl Default for AttackRegistry {
    fn default() -> Self {
        let mut reg = AttackRegistry {
            factories: BTreeMap::new(),
            adaptive: BTreeMap::new(),
        };
        reg.register_adaptive("pin", |ctx| {
            crate::adaptive::PinPolicy::parse(ctx.args)
                .map(|p| Box::new(p) as Box<dyn crate::adaptive::AdaptiveAttack>)
        });
        reg
    }
}

impl AttackRegistry {
    /// A registry holding only the built-in adaptive `pin` policy
    /// (generic faults need no registration).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `factory` under `name`, replacing any previous entry.
    pub fn register(
        &mut self,
        name: &'static str,
        factory: impl Fn(&AttackCtx<'_>) -> Option<AttackRole> + Send + Sync + 'static,
    ) {
        self.factories.insert(name, Box::new(factory));
    }

    /// Whether an attack named `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Registered attack names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.factories.keys().copied()
    }

    /// Builds the attack `name` for `ctx`; `None` when the name is
    /// unknown or the factory rejected the arguments.
    pub fn build(&self, name: &str, ctx: &AttackCtx<'_>) -> Option<AttackRole> {
        self.factories.get(name)?(ctx)
    }

    /// Registers an adaptive-attack `factory` under `name`, replacing any
    /// previous entry.
    pub fn register_adaptive(
        &mut self,
        name: &'static str,
        factory: impl Fn(&AdaptiveCtx<'_>) -> Option<Box<dyn crate::adaptive::AdaptiveAttack>>
            + Send
            + Sync
            + 'static,
    ) {
        self.adaptive.insert(name, Box::new(factory));
    }

    /// Whether an adaptive attack named `name` is registered.
    pub fn contains_adaptive(&self, name: &str) -> bool {
        self.adaptive.contains_key(name)
    }

    /// Registered adaptive-attack names, sorted.
    pub fn adaptive_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.adaptive.keys().copied()
    }

    /// Builds the adaptive attack `name` for `ctx`; `None` when the name
    /// is unknown or the factory rejected the arguments.
    pub fn build_adaptive(
        &self,
        name: &str,
        ctx: &AdaptiveCtx<'_>,
    ) -> Option<Box<dyn crate::adaptive::AdaptiveAttack>> {
        self.adaptive.get(name)?(ctx)
    }
}

impl fmt::Debug for AttackRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.names()).finish()
    }
}

/// A sweep over the cross-product of backends × schedulers × fault plans
/// × seeds, run in parallel via [`run_trials`](crate::run_trials).
///
/// Every cell is identified by its scenario *string* (composed from the
/// axes) plus its seed, and [`ScenarioMatrix::run`] re-parses that string
/// inside the trial — results are reproducible from `(seed, scenario
/// string)` alone, with no hidden state.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// Number of parties (shared by every cell).
    pub n: usize,
    /// Fault threshold.
    pub t: usize,
    /// Backend axis (`rt=` values: `sim`, `sharded:<k>`, `threaded`).
    pub backends: Vec<String>,
    /// Scheduler axis (`sched=` values).
    pub schedulers: Vec<String>,
    /// Fault-plan axis (`corrupt=` values; `""` means all honest).
    pub plans: Vec<String>,
    /// Seed axis.
    pub seeds: Vec<u64>,
}

/// One completed cell of a [`ScenarioMatrix`] sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixCell<T> {
    /// The cell's canonical scenario string.
    pub spec: String,
    /// The cell's seed.
    pub seed: u64,
    /// Whatever the runner returned.
    pub outcome: T,
}

impl ScenarioMatrix {
    /// The scenario strings of the sweep (cross-product minus seeds), in
    /// axis order: backends outermost, then schedulers, then plans.
    pub fn specs(&self) -> Vec<String> {
        let mut specs = Vec::new();
        for rt in &self.backends {
            for sched in &self.schedulers {
                for plan in &self.plans {
                    let corrupt = if plan.is_empty() {
                        String::new()
                    } else {
                        format!(",corrupt={plan}")
                    };
                    specs.push(format!(
                        "n={},t={}{corrupt},sched={sched},rt={rt}",
                        self.n, self.t
                    ));
                }
            }
        }
        specs
    }

    /// All `(scenario string, seed)` cells of the sweep.
    pub fn cells(&self) -> Vec<(String, u64)> {
        let mut cells = Vec::new();
        for spec in self.specs() {
            for &seed in &self.seeds {
                cells.push((spec.clone(), seed));
            }
        }
        cells
    }

    /// Runs `runner` on every cell across up to `threads` OS threads and
    /// returns outcomes in cell order.
    ///
    /// # Panics
    ///
    /// Panics if any composed scenario string fails to parse (axis values
    /// are validated here, not at construction).
    pub fn run<T: Send>(
        &self,
        threads: usize,
        runner: impl Fn(&Scenario, u64) -> T + Sync,
    ) -> Vec<MatrixCell<T>> {
        let cells = self.cells();
        let outcomes = crate::montecarlo::run_trials(0..cells.len() as u64, threads, |i| {
            let (spec, seed) = &cells[i as usize];
            let scenario = Scenario::parse(spec)
                .unwrap_or_else(|| panic!("matrix composed an invalid scenario {spec:?}"));
            runner(&scenario, *seed)
        });
        cells
            .into_iter()
            .zip(outcomes)
            .map(|((spec, seed), outcome)| MatrixCell {
                spec,
                seed,
                outcome,
            })
            .collect()
    }
}

/// A tiny deterministic (FNV-1a) fingerprint accumulator, used to compare
/// runs bit-for-bit across backends and re-runs without relying on
/// `std`'s unstable-by-contract default hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the fingerprint.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a `u64` (little-endian) into the fingerprint.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a string (with a terminator, so concatenations differ).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        self.write_bytes(&[0xff]);
    }

    /// Folds the run-affecting counters of a [`Metrics`] snapshot: sends,
    /// deliveries, drops, shun events and sorted per-kind send counts.
    pub fn write_metrics(&mut self, m: &Metrics) {
        self.write_u64(m.sent);
        self.write_u64(m.delivered);
        self.write_u64(m.dropped_shunned);
        self.write_u64(m.dropped_crashed);
        self.write_u64(m.shun_events);
        let mut kinds: Vec<(&'static str, u64)> = m.kinds().collect();
        kinds.sort();
        for (kind, count) in kinds {
            self.write_str(kind);
            self.write_u64(count);
        }
    }

    /// The accumulated 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SessionTag;
    use crate::instance::Context;
    use crate::runtime::{RuntimeExt, StopReason};

    fn sid() -> SessionId {
        SessionId::root().child(SessionTag::new("s", 0))
    }

    /// Counts pings; outputs after hearing 3.
    struct Pinger {
        heard: usize,
    }
    impl Instance for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send_all(1u8);
        }
        fn on_message(&mut self, _f: PartyId, p: &Payload, ctx: &mut Context<'_>) {
            if p.to_msg::<u8>().is_some() {
                self.heard += 1;
                if self.heard == 3 {
                    ctx.output(self.heard);
                }
            }
        }
    }

    #[test]
    fn parse_issue_example() {
        let s = Scenario::parse(
            "scenario:n=16,t=3,corrupt=silent@1;garbage@5,sched=starve:1,rt=sharded:4",
        )
        .unwrap();
        assert_eq!((s.n, s.t), (16, 3));
        assert_eq!(s.corruptions.len(), 2);
        assert_eq!(s.fault_of(PartyId(1)), Some(&FaultSpec::Silent));
        assert_eq!(
            s.fault_of(PartyId(5)),
            Some(&FaultSpec::Garbage(DEFAULT_GARBAGE_BUDGET))
        );
        assert_eq!(s.sched, "starve:1");
        assert_eq!(s.rt, "sharded:4");
        assert_eq!(s.backend_name(), "sharded:4:starve:1");
    }

    #[test]
    fn parse_defaults_and_prefix_optional() {
        let s = Scenario::parse("n=7").unwrap();
        assert_eq!((s.n, s.t), (7, 2));
        assert!(s.corruptions.is_empty());
        assert_eq!(s.sched, "random");
        assert_eq!(s.rt, "sim");
        assert_eq!(Scenario::parse("scenario:n=7"), Some(s));
    }

    #[test]
    fn parse_glues_scheduler_commas() {
        let s = Scenario::parse("n=7,t=2,sched=starve:1,3,rt=sim").unwrap();
        assert_eq!(s.sched, "starve:1,3");
        assert_eq!(s.rt, "sim");
        // Comma-continuations also work for attack args in corrupt plans.
        let s = Scenario::parse("n=7,sched=random,corrupt=wrong-cross:1,2@4").unwrap();
        assert_eq!(
            s.fault_of(PartyId(4)),
            Some(&FaultSpec::Attack {
                name: "wrong-cross".into(),
                args: "1,2".into()
            })
        );
    }

    #[test]
    fn display_round_trips_and_is_canonical() {
        for spec in [
            "n=4,t=1,sched=random,rt=sim",
            "n=7,t=2,corrupt=silent@2;mute-after:6@5,sched=lifo,rt=sharded:2",
            "n=16,t=5,corrupt=garbage:9@1;equivocate:3@8;my-attack:x@12,sched=window4,rt=threaded",
            "n=10,t=3,corrupt=crash@9,sched=starve:1,3,rt=sharded:1",
            "n=7,t=2,sched=net:lat=1..20,partition=p50,heal=200,rt=sim",
            "n=7,t=2,corrupt=recover:120@6,sched=net:lat=exp:5,partition=3+5,heal=80,rt=sharded:2",
        ] {
            let s = Scenario::parse(spec).unwrap();
            assert_eq!(s.to_string(), spec, "canonical form is stable");
            assert_eq!(Scenario::parse(&s.to_string()), Some(s), "{spec}");
        }
        // Non-canonical inputs normalize: default budgets become explicit,
        // corruption lists sort by party.
        let s = Scenario::parse("n=7,corrupt=garbage@5;silent@2").unwrap();
        assert_eq!(
            s.to_string(),
            "n=7,t=2,corrupt=silent@2;garbage:32@5,sched=random,rt=sim"
        );
    }

    #[test]
    fn parse_rejects_invalid() {
        for bad in [
            "",                                                        // no n
            "t=1",                                                     // no n
            "n=4,t=2",                                                 // resilience violated
            "n=4,t=1,corrupt=silent@1;silent@2",                       // two corruptions > t
            "n=4,t=1,corrupt=silent@4",                                // party out of range
            "n=4,t=1,corrupt=silent@1;silent@1",                       // duplicate party
            "n=4,t=1,corrupt=silent:9@1",                              // silent takes no args
            "n=4,t=1,corrupt=mute-after@1",                            // mute-after needs a count
            "n=4,t=1,corrupt=garbage:x@1",                             // malformed builtin args
            "n=4,t=1,corrupt=Bad-Name@1",                              // invalid attack name
            "n=4,t=1,corrupt=silent",                                  // missing @party
            "n=4,sched=bogus",                                         // unknown scheduler
            "n=4,sched=net:",                                          // empty net argument list
            "n=4,sched=net:lat=0..3",                                  // zero latency bound
            "n=4,sched=net:heal=50",                                   // heal without a partition
            "n=4,t=1,sched=net:lat=1..4,partition=0+1,heal=9",         // cut > t
            "n=4,t=1,sched=net:lat=1..4,partition=5,heal=9",           // cut id >= n
            "n=4,t=1,corrupt=recover@1",                               // recover needs a vtime
            "n=4,t=1,corrupt=recover:50@1",                            // recover needs sched=net:
            "n=4,rt=hovercraft",                                       // unknown runtime
            "n=4,rt=sharded:0",                                        // zero shards
            "n=4,rt=sim:lifo",   // scheduler belongs in sched=
            "n=4,rt=wire:lifo",  // ditto for the wire backend
            "n=4,rt=wire:",      // malformed wire spec
            "n=4,rt=async:lifo", // ditto for the async backend
            "n=4,rt=async:",     // malformed async spec
            "n=4,rt=proc:5",     // party-count mismatch
            "n=4,rt=proc:x",     // malformed party count
            "n=4,t=1,corrupt=recover:50@3,sched=net:lat=1..4,rt=proc", // supervisor-only
            "n=4,zzz=1",         // unknown field
            "n=four",            // malformed n
        ] {
            assert!(Scenario::parse(bad).is_none(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn async_and_proc_cells_parse_and_misuse_gets_a_clear_error() {
        let s = Scenario::parse("n=4,t=1,corrupt=silent@2,sched=lifo,rt=async").unwrap();
        assert_eq!(s.backend_name(), "async:lifo");
        assert_eq!(
            s.to_string(),
            "n=4,t=1,corrupt=silent@2,sched=lifo,rt=async"
        );
        let s = Scenario::parse("n=4,t=1,rt=proc").unwrap();
        assert_eq!(
            s.backend_name(),
            "proc",
            "proc ignores sched= (OS schedules)"
        );
        let s = Scenario::parse("n=4,t=1,rt=proc:4").unwrap();
        assert_eq!(s.backend_name(), "proc:4");

        // Scheduler jammed into rt=async: the error names the fix.
        let mut bad = Scenario::honest(4, 1);
        bad.rt = "async:lifo".into();
        let err = bad.validate().unwrap_err();
        assert!(err.contains("sched="), "targeted message, got: {err}");
        // Party-count mismatch on proc names both numbers.
        let mut bad = Scenario::honest(4, 1);
        bad.rt = "proc:7".into();
        let err = bad.validate().unwrap_err();
        assert!(err.contains("n=4"), "targeted message, got: {err}");
        // recover: on proc points at the supervisor.
        let mut bad = Scenario::honest(4, 1);
        bad.rt = "proc".into();
        bad.sched = "net:lat=1..4".into();
        bad.corruptions = vec![Corruption {
            party: PartyId(3),
            fault: FaultSpec::Recover(50),
        }];
        let err = bad.validate().unwrap_err();
        assert!(
            err.contains("exp_deployment"),
            "targeted message, got: {err}"
        );
        // Adaptive plans are rejected on proc like on threaded.
        let mut bad = Scenario::honest(4, 1);
        bad.rt = "proc".into();
        bad.adaptive = Some(AdaptiveSpec {
            name: "pin".into(),
            args: "silent:3".into(),
        });
        let err = bad.validate().unwrap_err();
        assert!(err.contains("deterministic"), "{err}");
        assert!(err.contains("rt=async"), "lists the async backend: {err}");
    }

    #[test]
    fn wire_cells_parse_and_misuse_gets_a_clear_error() {
        let s = Scenario::parse("n=4,t=1,corrupt=garbage:9@3,sched=lifo,rt=wire").unwrap();
        assert_eq!(s.rt, "wire");
        assert_eq!(s.backend_name(), "wire:lifo");
        assert_eq!(
            s.to_string(),
            "n=4,t=1,corrupt=garbage:9@3,sched=lifo,rt=wire"
        );
        // Hand-built scenario with scheduler jammed into rt=: validate()
        // names the mistake instead of panicking at runtime() time.
        let mut bad = Scenario::honest(4, 1);
        bad.rt = "wire:lifo".into();
        let err = bad.validate().unwrap_err();
        assert!(err.contains("sched="), "targeted message, got: {err}");
    }

    #[test]
    fn scheduler_errors_name_the_family_grammar() {
        // Unknown family: the error lists the families so the fix is
        // discoverable without reading source.
        let mut s = Scenario::honest(4, 1);
        s.sched = "bogus".into();
        let err = s.validate().unwrap_err();
        assert!(err.contains("families:"), "{err}");
        assert!(err.contains("net"), "{err}");
        // Known family, malformed arguments: the error carries that
        // family's grammar example.
        s.sched = "net:lat=..".into();
        let err = s.validate().unwrap_err();
        assert!(err.contains("net:lat=1..8"), "{err}");
        s.sched = "starve:".into();
        let err = s.validate().unwrap_err();
        assert!(err.contains("starve"), "{err}");
        // Cuts isolating more than t parties are rejected up front: they
        // could block termination, which no scenario may encode.
        s.sched = "net:lat=1..4,partition=0+1,heal=50".into();
        let err = s.validate().unwrap_err();
        assert!(err.contains("fault threshold"), "{err}");
        // Recover without virtual time is meaningless.
        s.sched = "random".into();
        s.corruptions = vec![Corruption {
            party: PartyId(2),
            fault: FaultSpec::Recover(40),
        }];
        let err = s.validate().unwrap_err();
        assert!(err.contains("sched=net:"), "{err}");
    }

    #[test]
    fn deploy_recover_rejoins_mid_episode() {
        // Party 3 crashes at spawn and recovers at vtime 50: its initial
        // broadcast is retracted, the pre-recovery deliveries to it are
        // dropped-and-counted, and the respawned instance broadcasts after
        // rejoining — observable as 4 extra sends on every backend.
        for rt_name in ["sim", "sharded:2", "wire", "async"] {
            let spec = format!("n=4,t=1,corrupt=recover:50@3,sched=net:lat=1..4,rt={rt_name}");
            let s = Scenario::parse(&spec).unwrap();
            let mut rt = s.runtime(9);
            s.deploy_episode(
                rt.as_mut(),
                &AttackRegistry::new(),
                "ping",
                &sid(),
                &[],
                |_, _| Box::new(Pinger { heard: 0 }),
            )
            .unwrap();
            let report = rt.run(1_000_000);
            assert_eq!(report.stop, StopReason::Quiescent, "{rt_name}");
            assert_eq!(report.metrics.sent, 16, "{rt_name}: 3 live + 1 rejoined");
            assert_eq!(
                report.metrics.sent,
                report.metrics.delivered
                    + report.metrics.dropped_shunned
                    + report.metrics.dropped_crashed,
                "{rt_name}: conservation across the recovery"
            );
            for p in s.honest_parties() {
                assert_eq!(
                    rt.output_as::<usize>(p, &sid()),
                    Some(&3),
                    "{rt_name} {p:?}"
                );
            }
        }
    }

    #[test]
    fn backend_name_composition() {
        let mut s = Scenario::honest(4, 1);
        s.sched = "lifo".into();
        assert_eq!(s.backend_name(), "sim:lifo");
        s.rt = "sharded:4".into();
        assert_eq!(s.backend_name(), "sharded:4:lifo");
        s.rt = "threaded".into();
        assert_eq!(s.backend_name(), "threaded");
        s.rt = "async".into();
        assert_eq!(s.backend_name(), "async:lifo");
        s.rt = "proc".into();
        assert_eq!(s.backend_name(), "proc");
    }

    #[test]
    fn deploy_generic_faults_and_crash() {
        // 7 parties, silent@5 + crash@6: the 5 honest pingers each
        // broadcast once and hear enough pings to output.
        let s = Scenario::parse("n=7,t=2,corrupt=silent@5;crash@6,sched=random,rt=sim").unwrap();
        let mut rt = s.runtime(11);
        let reg = AttackRegistry::new();
        s.deploy_episode(rt.as_mut(), &reg, "ping", &sid(), &[], |_, _| {
            Box::new(Pinger { heard: 0 })
        })
        .unwrap();
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        for p in s.honest_parties() {
            assert_eq!(rt.output_as::<usize>(p, &sid()), Some(&3), "party {p:?}");
        }
        assert!(rt.output(PartyId(5), &sid()).is_none(), "silent");
        assert!(rt.output(PartyId(6), &sid()).is_none(), "crashed");
        // Crash-before-run retracted party 6's initial broadcast entirely:
        // only the 5 live parties' send_alls count, and each of their
        // deliveries to the crashed party is dropped-and-counted.
        assert_eq!(report.metrics.sent, 35);
        assert_eq!(report.metrics.dropped_crashed, 5);
    }

    #[test]
    fn deploy_attack_roles_and_errors() {
        let mut reg = AttackRegistry::new();
        reg.register("pinger-stutter", |ctx| match ctx.episode {
            "ping" => Some(AttackRole::Instance(Box::new(SilentInstance))),
            _ => Some(AttackRole::Honest),
        });
        assert!(reg.contains("pinger-stutter"));
        assert_eq!(reg.names().collect::<Vec<_>>(), vec!["pinger-stutter"]);

        let s = Scenario::parse("n=4,t=1,corrupt=pinger-stutter@3,sched=fifo,rt=sim").unwrap();
        assert!(s.validate_attacks(&reg).is_ok());
        assert!(s
            .validate_attacks(&AttackRegistry::new())
            .unwrap_err()
            .contains("pinger-stutter"));

        // Episode "ping": the attack is active (silent).
        let mut rt = s.runtime(3);
        s.deploy_episode(rt.as_mut(), &reg, "ping", &sid(), &[], |_, _| {
            Box::new(Pinger { heard: 0 })
        })
        .unwrap();
        rt.run(1_000_000);
        assert!(rt.output(PartyId(3), &sid()).is_none());

        // Episode "other": AttackRole::Honest falls back to the honest
        // instance.
        let other = SessionId::root().child(SessionTag::new("other", 0));
        let mut rt = s.runtime(3);
        s.deploy_episode(rt.as_mut(), &reg, "other", &other, &[], |_, _| {
            Box::new(Pinger { heard: 0 })
        })
        .unwrap();
        rt.run(1_000_000);
        assert_eq!(rt.output_as::<usize>(PartyId(3), &other), Some(&3));

        // Unknown attack: deploy fails loudly.
        let mut rt = s.runtime(3);
        let err = s
            .deploy_episode(
                rt.as_mut(),
                &AttackRegistry::new(),
                "ping",
                &sid(),
                &[],
                |_, _| Box::new(Pinger { heard: 0 }),
            )
            .unwrap_err();
        assert!(err.contains("pinger-stutter"), "{err}");
    }

    #[test]
    fn deploy_rejects_mismatched_runtime() {
        let s = Scenario::honest(4, 1);
        let mut rt = runtime_by_name("sim", NetConfig::new(7, 2, 0)).unwrap();
        let err = s
            .deploy_episode(
                rt.as_mut(),
                &AttackRegistry::new(),
                "ping",
                &sid(),
                &[],
                |_, _| Box::new(SilentInstance),
            )
            .unwrap_err();
        assert!(err.contains("n=7"), "{err}");
    }

    #[test]
    fn deploy_forwards_carries() {
        struct EchoCarry;
        impl Instance for EchoCarry {
            fn on_start(&mut self, _ctx: &mut Context<'_>) {}
            fn on_message(&mut self, _f: PartyId, _p: &Payload, _c: &mut Context<'_>) {}
        }
        let s = Scenario::honest(4, 1);
        let mut rt = s.runtime(0);
        let carries: Vec<Option<Payload>> = (0..4u64).map(|p| Some(Payload::new(p))).collect();
        let mut seen = Vec::new();
        s.deploy_episode(
            rt.as_mut(),
            &AttackRegistry::new(),
            "e2",
            &sid(),
            &carries,
            |p, c| {
                seen.push((p, c.and_then(|c| c.downcast_ref::<u64>()).copied()));
                Box::new(EchoCarry)
            },
        )
        .unwrap();
        assert_eq!(
            seen,
            (0..4)
                .map(|p| (PartyId(p), Some(p as u64)))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn matrix_cells_and_reproducible_run() {
        let matrix = ScenarioMatrix {
            n: 4,
            t: 1,
            backends: vec!["sim".into(), "sharded:2".into()],
            schedulers: vec!["fifo".into(), "random".into()],
            plans: vec!["".into(), "silent@3".into()],
            seeds: vec![1, 2],
        };
        assert_eq!(matrix.specs().len(), 8);
        assert_eq!(matrix.cells().len(), 16);
        let run = || {
            matrix.run(4, |scenario, seed| {
                let mut rt = scenario.runtime(seed);
                scenario
                    .deploy_episode(
                        rt.as_mut(),
                        &AttackRegistry::new(),
                        "ping",
                        &sid(),
                        &[],
                        |_, _| Box::new(Pinger { heard: 0 }),
                    )
                    .unwrap();
                let report = rt.run(1_000_000);
                let mut fp = Fingerprint::new();
                fp.write_metrics(&report.metrics);
                for p in (0..scenario.n).map(PartyId) {
                    fp.write_str(&format!("{:?}", rt.output_as::<usize>(p, &sid())));
                }
                (report.stop, fp.finish())
            })
        };
        let first = run();
        assert!(first.iter().all(|c| c.outcome.0 == StopReason::Quiescent));
        // Bit-for-bit reproducible from (seed, scenario string) alone.
        assert_eq!(first, run());
    }

    #[test]
    fn adaptive_specs_parse_and_round_trip() {
        for spec in [
            "n=4,t=1,corrupt=adaptive:coin-favorite@*,sched=random,rt=sim",
            "n=7,t=2,corrupt=silent@2;adaptive:pin:storm:1@*,sched=lifo,rt=wire",
            "n=7,t=2,corrupt=adaptive:core-candidates:50@*,sched=net:lat=1..8,rt=sharded:4",
        ] {
            let s = Scenario::parse(spec).unwrap();
            assert!(s.adaptive.is_some(), "{spec}");
            assert_eq!(s.to_string(), spec, "canonical form is stable");
            assert_eq!(Scenario::parse(&s.to_string()), Some(s), "{spec}");
        }
        let s = Scenario::parse("n=7,t=2,corrupt=adaptive:pin:silent:3@*").unwrap();
        let a = s.adaptive.unwrap();
        assert_eq!(a.name, "pin");
        assert_eq!(a.args, "silent:3");
    }

    #[test]
    fn adaptive_specs_reject_invalid() {
        for bad in [
            "n=4,t=1,corrupt=silent@*",                   // only adaptive: binds to *
            "n=4,t=1,corrupt=adaptive:@*",                // empty name
            "n=4,t=1,corrupt=adaptive:Bad@*",             // invalid name charset
            "n=4,t=1,corrupt=adaptive:a@*;adaptive:b@*",  // at most one
            "n=4,t=1,corrupt=adaptive:pin:silent:3@2",    // numeric party
            "n=4,t=1,corrupt=adaptive:pin@*,rt=threaded", // nondeterministic backend
        ] {
            assert!(Scenario::parse(bad).is_none(), "{bad:?} must not parse");
        }
        // The numeric-party and threaded rejections carry targeted errors.
        let mut s = Scenario::honest(4, 1);
        s.corruptions = vec![Corruption {
            party: PartyId(2),
            fault: FaultSpec::Attack {
                name: "adaptive".into(),
                args: "pin:silent:3".into(),
            },
        }];
        let err = s.validate().unwrap_err();
        assert!(err.contains("adaptive:<name>@*"), "{err}");
        let mut s = Scenario::honest(4, 1);
        s.adaptive = Some(AdaptiveSpec {
            name: "pin".into(),
            args: "silent:3".into(),
        });
        s.rt = "threaded".into();
        let err = s.validate().unwrap_err();
        assert!(err.contains("rt=sim"), "targeted hint, got: {err}");
        assert!(err.contains("deterministic"), "{err}");
    }

    #[test]
    fn adaptive_registry_and_validate_attacks() {
        let reg = AttackRegistry::new();
        assert!(reg.contains_adaptive("pin"), "pin is built in");
        assert_eq!(reg.adaptive_names().collect::<Vec<_>>(), vec!["pin"]);
        let s = Scenario::parse("n=4,t=1,corrupt=adaptive:pin:silent:3@*").unwrap();
        assert!(s.validate_attacks(&reg).is_ok());
        let s = Scenario::parse("n=4,t=1,corrupt=adaptive:nope@*").unwrap();
        let err = s.validate_attacks(&reg).unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn deploy_adaptive_pin_mutes_target() {
        // adaptive:pin:silent:3@* behaves exactly like silent@3: party 3
        // never outputs, everyone else does.
        for rt_name in ["sim", "sharded:2", "wire", "async"] {
            let spec = format!("n=4,t=1,corrupt=adaptive:pin:silent:3@*,sched=fifo,rt={rt_name}");
            let s = Scenario::parse(&spec).unwrap();
            let reg = AttackRegistry::new();
            let mut rt = s.runtime(7);
            s.deploy_episode(rt.as_mut(), &reg, "ping", &sid(), &[], |_, _| {
                Box::new(Pinger { heard: 0 })
            })
            .unwrap();
            let report = rt.run(1_000_000);
            assert_eq!(report.stop, StopReason::Quiescent, "{rt_name}");
            assert!(rt.output(PartyId(3), &sid()).is_none(), "{rt_name}: muted");
            for p in (0..3).map(PartyId) {
                assert_eq!(
                    rt.output_as::<usize>(p, &sid()),
                    Some(&3),
                    "{rt_name} {p:?}"
                );
            }
            let ctrl = rt.adaptive_handle().expect("controller installed");
            let ctrl = ctrl.lock().unwrap();
            assert_eq!(ctrl.plan().victims().collect::<Vec<_>>(), vec![PartyId(3)]);
        }
    }

    #[test]
    fn fingerprint_separates_and_repeats() {
        let mut a = Fingerprint::new();
        a.write_str("ab");
        let mut b = Fingerprint::new();
        b.write_str("a");
        b.write_str("b");
        assert_ne!(a.finish(), b.finish(), "terminator separates strings");
        let mut c = Fingerprint::new();
        c.write_str("ab");
        assert_eq!(a.finish(), c.finish());
        let mut m = Metrics::default();
        m.sent = 3;
        let mut d = Fingerprint::new();
        d.write_metrics(&m);
        let mut e = Fingerprint::new();
        e.write_metrics(&m);
        assert_eq!(d.finish(), e.finish());
    }
}
