//! `FBA` — the paper's Algorithm 3: multivalued Byzantine agreement with
//! **fair validity** (Theorem 4.5).

use crate::common_subset::CommonSubset;
use crate::config::CoinKind;
use crate::fair_choice::{FairChoice, FairChoiceParams};
use aft_broadcast::{Acast, Value};
use aft_sim::{Context, Instance, PartyId, Payload, SessionTag};
use std::collections::HashMap;

/// Session tag kinds of FBA children.
const INPUT_TAG: &str = "fba-in";
const CHOICE_TAG: &str = "fba-choice";

/// One party's Fair Byzantine Agreement instance (Algorithm 3), generic
/// over the input value type `V`.
///
/// 1. every party A-Casts its input; `Q(j)` = "`j`'s A-Cast delivered";
/// 2. `CommonSubset(Q, n−t)` agrees on a party set `S`;
/// 3. once every `j ∈ S`'s A-Cast delivered: if some value holds a strict
///    majority among `{x'_j : j ∈ S}`, output it;
/// 4. otherwise run `FairChoice(|S|)` and output the value of the chosen
///    party (`k`-th biggest id in `S`: `k = 0` is the biggest, as in the
///    paper's line 7).
///
/// Properties (Theorem 4.5, verified by tests/experiments):
/// * Termination — almost-sure, and all-or-nothing among honest parties;
/// * Validity — unanimous honest inputs are output directly (majority
///   branch), and otherwise the output is some *nonfaulty* party's input
///   with probability ≥ ½ (the fair-validity property this paper
///   introduces);
/// * Correctness — all honest outputs are equal.
pub struct Fba<V> {
    input: V,
    choice_params: FairChoiceParams,
    coin: CoinKind,
    values: HashMap<usize, V>,
    cs: CommonSubset,
    subset: Option<Vec<PartyId>>,
    done: bool,
}

impl<V: Value> Fba<V> {
    /// Creates the instance with this party's `input`.
    pub fn new(input: V, choice_params: FairChoiceParams, coin: CoinKind) -> Self {
        Fba {
            input,
            choice_params,
            coin,
            values: HashMap::new(),
            cs: CommonSubset::new(0, 0, coin), // k set in on_start
            subset: None,
            done: false,
        }
    }

    /// Step 4-5: once `S` and all its values are known, either output the
    /// strict-majority value or launch FairChoice.
    fn try_resolve(&mut self, ctx: &mut Context<'_>) {
        if self.done {
            return;
        }
        let Some(subset) = self.subset.clone() else {
            return;
        };
        if !subset.iter().all(|j| self.values.contains_key(&j.0)) {
            return;
        }
        let m = subset.len();
        // Strict majority among the subset's values?
        let mut counts: HashMap<&V, usize> = HashMap::new();
        for j in &subset {
            *counts.entry(&self.values[&j.0]).or_insert(0) += 1;
        }
        if let Some((&value, _)) = counts.iter().find(|&(_, &c)| 2 * c > m) {
            let value = value.clone();
            self.done = true;
            ctx.output(value);
            return;
        }
        // FairChoice over the m members (spawned once; `done` is false and
        // the child spawn is idempotent by session id).
        ctx.spawn(
            SessionTag::new(CHOICE_TAG, 0),
            Box::new(FairChoice::new(m, self.choice_params, self.coin)),
        );
    }
}

impl<V: Value> Instance for Fba<V> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let (n, t) = (ctx.n(), ctx.t());
        let me = ctx.me();
        self.cs = CommonSubset::new(n - t, 0, self.coin);
        for j in ctx.parties().collect::<Vec<_>>() {
            let inst: Box<dyn Instance> = if j == me {
                Box::new(Acast::sender(me, self.input.clone()))
            } else {
                Box::new(Acast::<V>::receiver(j))
            };
            ctx.spawn(SessionTag::new(INPUT_TAG, j.0 as u64), inst);
        }
    }

    fn on_message(&mut self, _from: PartyId, _payload: &Payload, _ctx: &mut Context<'_>) {}

    fn on_child_output(&mut self, child: &SessionTag, output: &Payload, ctx: &mut Context<'_>) {
        match child.kind {
            INPUT_TAG => {
                let j = child.index as usize;
                if let Some(v) = output.downcast_ref::<V>() {
                    self.values.entry(j).or_insert_with(|| v.clone());
                    // Q(j) := 1 — j's A-Cast completed.
                    self.cs.set_predicate(j, ctx);
                    self.try_resolve(ctx);
                }
            }
            CHOICE_TAG => {
                if self.done {
                    return;
                }
                let (Some(&k), Some(subset)) =
                    (output.downcast_ref::<usize>(), self.subset.as_ref())
                else {
                    return;
                };
                // k-th biggest id in S; 0 = biggest (paper line 7).
                let mut desc: Vec<PartyId> = subset.clone();
                desc.sort_by(|a, b| b.cmp(a));
                let j = desc[k];
                let value = self.values[&j.0].clone();
                self.done = true;
                ctx.output(value);
            }
            _ => {
                if self.subset.is_none() {
                    if let Some(s) = self.cs.on_child_output(child, output, ctx) {
                        self.subset = Some(s);
                        self.try_resolve(ctx);
                    }
                }
            }
        }
    }
}
