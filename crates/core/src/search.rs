//! Coverage-guided scenario search: an autonomous bug hunter over the
//! adversarial scenario grammar.
//!
//! The searcher breeds scenario strings (mutate `n`/`t`, fault plans,
//! schedulers, backends; cross over plan lists) and scores each run by a
//! *coverage signal* extracted from the observability the substrate
//! already has: per-kind send counts, decode-miss counters, shun/drop
//! totals, wire malformation counts, causal depth-histogram tails and
//! virtual-time profiles, each bucketed to a log₂ feature. A candidate
//! that lights up a feature no earlier run produced joins the corpus;
//! one that violates an invariant is [shrunk](shrink) to a minimal
//! scenario string that still reproduces the *same* violation signature,
//! ready for a repro bundle
//! ([`write_repro_bundle`](crate::scenarios::write_repro_bundle)).
//!
//! Everything is deterministic in `(corpus, round seed)`: mutation
//! choices come from a seeded ChaCha stream and every cell run is a pure
//! function of `(scenario, seed)`, so a search round replays bit-for-bit
//! — the property the `exp_scenario_search --smoke` gate asserts.

use crate::scenarios::{
    run_cell_budgeted, run_cell_instrumented, CellOutcome, CellReport, StackKind,
};
use aft_sim::{
    AdaptiveSpec, AttackRegistry, Corruption, FaultSpec, Fingerprint, PartyId, Scenario, TraceMode,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::collections::BTreeSet;
use std::path::Path;

/// Default per-episode step budget for search runs: generous enough that
/// every honest stack at `n ≤ 10` quiesces, small enough that a planted
/// non-quiescing scenario (e.g. an adaptive storm) reports `StepLimit`
/// in well under a second instead of burning the conformance budget.
pub const SEARCH_STEP_BUDGET: u64 = 500_000;

/// Trace ring retained during search runs — the depth-histogram tail is
/// part of the coverage signal, but unbounded retention would dominate
/// run cost.
const SEARCH_TRACE_RING: usize = 4096;

/// One corpus member: a stack, a seed and a scenario spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Which reference stack the spec runs against.
    pub stack: StackKind,
    /// The cell seed.
    pub seed: u64,
    /// The scenario spec string (always re-parses).
    pub spec: String,
}

impl CorpusEntry {
    /// Persisted line form: `<stack-label> <seed> <spec>`.
    pub fn to_line(&self) -> String {
        format!("{} {} {}", self.stack.label(), self.seed, self.spec)
    }

    /// Parses [`CorpusEntry::to_line`] output; `None` on malformed lines
    /// (including specs that no longer parse under the current grammar —
    /// a stale corpus degrades, it doesn't wedge the searcher).
    pub fn from_line(line: &str) -> Option<CorpusEntry> {
        let (label, rest) = line.trim().split_once(' ')?;
        let (seed, spec) = rest.split_once(' ')?;
        let entry = CorpusEntry {
            stack: StackKind::from_label(label)?,
            seed: seed.parse().ok()?,
            spec: spec.to_string(),
        };
        Scenario::parse(&entry.spec)?;
        Some(entry)
    }
}

/// The persistent search corpus: entries plus the coverage features and
/// report fingerprints they have produced (dedup state).
#[derive(Debug, Default)]
pub struct Corpus {
    /// Corpus members in discovery order.
    pub entries: Vec<CorpusEntry>,
    features: BTreeSet<String>,
    fingerprints: BTreeSet<u64>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Corpus {
        Corpus::default()
    }

    /// Seeds the corpus with the standard conformance axes: every stack's
    /// standard fault plans plus one adaptive entry per stack, all at the
    /// smallest system size. These are the mutation parents of round 0.
    pub fn seed_defaults(&mut self) {
        for kind in StackKind::all() {
            for plan in kind.standard_plans() {
                let spec = if plan.is_empty() {
                    "n=4,t=1,sched=random,rt=sim".to_string()
                } else {
                    format!("n=4,t=1,corrupt={plan},sched=random,rt=sim")
                };
                self.push_unique(CorpusEntry {
                    stack: kind,
                    seed: 5,
                    spec,
                });
            }
            let adaptive = match kind {
                StackKind::Ba => "coin-favorite",
                StackKind::SvssChain | StackKind::CommonSubset => "core-candidates",
            };
            self.push_unique(CorpusEntry {
                stack: kind,
                seed: 5,
                spec: format!("n=4,t=1,corrupt=adaptive:{adaptive}@*,sched=random,rt=sim"),
            });
        }
    }

    fn push_unique(&mut self, entry: CorpusEntry) {
        if !self.entries.contains(&entry) {
            self.entries.push(entry);
        }
    }

    /// Records a run's coverage; returns `true` (and keeps `entry`) iff it
    /// produced a feature or report fingerprint no earlier run did.
    pub fn add_if_interesting(
        &mut self,
        entry: CorpusEntry,
        features: &BTreeSet<String>,
        report_fingerprint: u64,
    ) -> bool {
        let mut fresh = self.fingerprints.insert(report_fingerprint);
        for f in features {
            fresh |= self.features.insert(f.clone());
        }
        if fresh {
            self.push_unique(entry);
        }
        fresh
    }

    /// Number of distinct coverage features observed so far.
    pub fn feature_count(&self) -> usize {
        self.features.len()
    }

    /// Deterministic fingerprint of the corpus *contents* (sorted entry
    /// lines, discovery order ignored) — the smoke gate's replay check.
    pub fn fingerprint(&self) -> u64 {
        let mut lines: Vec<String> = self.entries.iter().map(CorpusEntry::to_line).collect();
        lines.sort();
        let mut fp = Fingerprint::new();
        for line in &lines {
            fp.write_str(line);
        }
        fp.finish()
    }

    /// Loads a corpus from `path` (one [`CorpusEntry::to_line`] per line;
    /// unparseable lines are dropped). Missing file → empty corpus.
    pub fn load(path: &Path) -> std::io::Result<Corpus> {
        let mut corpus = Corpus::new();
        match std::fs::read_to_string(path) {
            Ok(text) => {
                for line in text.lines() {
                    if let Some(entry) = CorpusEntry::from_line(line) {
                        corpus.push_unique(entry);
                    }
                }
                Ok(corpus)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(corpus),
            Err(e) => Err(e),
        }
    }

    /// Persists the corpus to `path`, creating parent directories.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut text = String::new();
        for entry in &self.entries {
            text.push_str(&entry.to_line());
            text.push('\n');
        }
        std::fs::write(path, text)
    }
}

/// Log₂ bucket of a counter (0 → 0, 1 → 1, 2..3 → 2, 4..7 → 3, …): the
/// coverage signal cares about order-of-magnitude changes, not exact
/// counts, so runs that differ only by scheduling noise map to the same
/// features.
fn bucket(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// The canonical violation class of one violation message — the unit the
/// violation signature and the shrinker compare by, so that two runs with
/// differently-worded but same-kind violations count as the same bug.
pub fn violation_class(violation: &str) -> &str {
    const CLASSES: [&str; 10] = [
        "conservation",
        "termination",
        "agreement",
        "validity",
        "binding",
        "secrecy",
        "subset",
        "consistency",
        "liveness",
        "deploy",
    ];
    if violation.contains("did not quiesce") {
        return "quiesce";
    }
    for class in CLASSES {
        if violation.contains(class) {
            return class;
        }
    }
    violation
        .split([':', ' '])
        .next()
        .filter(|s| !s.is_empty())
        .unwrap_or("unknown")
}

/// Deterministic signature of *which bug* a violating run exhibits: the
/// stack plus the sorted, deduplicated set of violation classes. The
/// shrinker only accepts candidates preserving this.
pub fn violation_signature(stack: StackKind, report: &CellReport) -> u64 {
    let classes: BTreeSet<&str> = report
        .violations
        .iter()
        .map(|v| violation_class(v))
        .collect();
    let mut fp = Fingerprint::new();
    fp.write_str(stack.label());
    for class in classes {
        fp.write_str(class);
    }
    fp.finish()
}

/// Extracts the coverage features of one instrumented run (see the module
/// docs for the feature families). All features are prefixed by the stack
/// label so the three stacks accumulate coverage independently.
pub fn coverage_features(stack: StackKind, outcome: &CellOutcome) -> BTreeSet<String> {
    let label = stack.label();
    let m = &outcome.metrics;
    let mut features = BTreeSet::new();
    for (kind, sent) in m.kinds() {
        features.insert(format!("{label}/sent/{kind}/{}", bucket(sent)));
    }
    for (kind, misses) in m.decode_misses() {
        features.insert(format!("{label}/decode-miss/{kind}/{}", bucket(misses)));
    }
    features.insert(format!("{label}/shun/{}", bucket(m.shun_events)));
    features.insert(format!("{label}/drop-shun/{}", bucket(m.dropped_shunned)));
    features.insert(format!("{label}/drop-crash/{}", bucket(m.dropped_crashed)));
    features.insert(format!("{label}/steps/{}", bucket(m.steps)));
    if m.wire_malformed > 0 {
        features.insert(format!(
            "{label}/wire-malformed/{}",
            bucket(m.wire_malformed)
        ));
    }
    if m.virtual_time > 0 {
        features.insert(format!("{label}/vtime/{}", bucket(m.virtual_time)));
    }
    for (kind, hist) in aft_sim::trace::depth_histograms(&outcome.events) {
        features.insert(format!("{label}/depth/{kind}/{}", bucket(hist.max)));
    }
    features.insert(format!("{label}/victims/{}", outcome.victims.len()));
    for v in &outcome.report.violations {
        features.insert(format!("{label}/violation/{}", violation_class(v)));
    }
    features
}

/// Scheduler alphabet for mutations — one representative per family plus
/// extra `net:` shapes (latency spread, partition with healing).
const SCHED_CHOICES: [&str; 9] = [
    "fifo",
    "lifo",
    "random",
    "window4",
    "block:8",
    "starve:1",
    "net:lat=1..8",
    "net:lat=2..6",
    "net:lat=1..20,partition=p50,heal=200",
];

/// Backend alphabet for mutations. `threaded` is deliberately absent: it
/// cannot honor replay (and rejects adaptive plans outright).
const RT_CHOICES: [&str; 4] = ["sim", "sharded:2", "sharded:4", "wire"];

/// Adaptive-attack alphabet per stack: `(name, args)`.
fn adaptive_choices(stack: StackKind) -> &'static [(&'static str, &'static str)] {
    match stack {
        StackKind::Ba => &[
            ("coin-favorite", ""),
            ("coin-favorite", "equivocate"),
            ("pin", "mute:1"),
            ("pin", "storm:2"),
        ],
        StackKind::SvssChain | StackKind::CommonSubset => &[
            ("core-candidates", ""),
            ("core-candidates", "50"),
            ("pin", "mute:3"),
            ("pin", "storm:2"),
        ],
    }
}

/// Static-fault alphabet for a stack: its standard plan entries with the
/// `@party` suffix stripped (the mutator retargets parties itself).
fn fault_alphabet(stack: StackKind) -> Vec<&'static str> {
    stack
        .standard_plans()
        .iter()
        .filter(|p| !p.is_empty())
        .filter_map(|p| p.rsplit_once('@').map(|(fault, _)| fault))
        .collect()
}

/// Applies one random mutation to `scenario` in place. The result may be
/// invalid (e.g. duplicate party) — the caller re-renders and re-parses,
/// discarding rejects, so this only needs to be *usually* productive.
fn mutate_once(scenario: &mut Scenario, stack: StackKind, rng: &mut ChaCha12Rng) {
    match rng.gen_range(0..7u32) {
        // Resample the system size; corruptions out of range are dropped
        // and the plan is truncated to the new budget.
        0 => {
            let n = rng.gen_range(4..=10usize);
            let t = (n - 1) / 3;
            scenario.n = n;
            scenario.t = t;
            scenario.corruptions.retain(|c| c.party.0 < n);
            scenario.corruptions.truncate(t);
        }
        1 => scenario.sched = SCHED_CHOICES[rng.gen_range(0..SCHED_CHOICES.len())].to_string(),
        2 => scenario.rt = RT_CHOICES[rng.gen_range(0..RT_CHOICES.len())].to_string(),
        // Add a corruption from the stack's fault alphabet on a currently
        // honest party (no-op when the budget is spent).
        3 => {
            if scenario.corruptions.len() < scenario.t {
                let alphabet = fault_alphabet(stack);
                let fault = alphabet[rng.gen_range(0..alphabet.len())];
                let party = PartyId(rng.gen_range(0..scenario.n));
                if !scenario.is_corrupt(party) {
                    if let Some(fault) = FaultSpec::parse(fault) {
                        scenario.corruptions.push(Corruption { party, fault });
                    }
                }
            }
        }
        4 => {
            if !scenario.corruptions.is_empty() {
                let idx = rng.gen_range(0..scenario.corruptions.len());
                scenario.corruptions.remove(idx);
            }
        }
        // Retarget one corruption to a random party (discarded on
        // collision by the re-parse).
        5 => {
            if !scenario.corruptions.is_empty() {
                let idx = rng.gen_range(0..scenario.corruptions.len());
                scenario.corruptions[idx].party = PartyId(rng.gen_range(0..scenario.n));
            }
        }
        // Toggle the adaptive adversary.
        _ => {
            if scenario.adaptive.is_some() && rng.gen_bool(0.5) {
                scenario.adaptive = None;
            } else {
                let choices = adaptive_choices(stack);
                let (name, args) = choices[rng.gen_range(0..choices.len())];
                scenario.adaptive = Some(AdaptiveSpec {
                    name: name.to_string(),
                    args: args.to_string(),
                });
            }
        }
    }
    scenario.corruptions.sort_by_key(|c| c.party);
}

/// Breeds one candidate from `parent` (and optionally `mate`: crossover
/// takes the mate's fault plan and adaptive spec, the parent's topology).
/// Returns `None` when the mutated scenario fails to re-parse or resolve
/// its attacks — the search loop just breeds again.
fn breed(
    parent: &CorpusEntry,
    mate: Option<&CorpusEntry>,
    registry: &AttackRegistry,
    rng: &mut ChaCha12Rng,
) -> Option<CorpusEntry> {
    let mut scenario = Scenario::parse(&parent.spec)?;
    if let Some(mate) = mate {
        let donor = Scenario::parse(&mate.spec)?;
        scenario.corruptions = donor
            .corruptions
            .into_iter()
            .filter(|c| c.party.0 < scenario.n)
            .take(scenario.t)
            .collect();
        scenario.adaptive = donor.adaptive;
    }
    for _ in 0..rng.gen_range(1..=3u32) {
        mutate_once(&mut scenario, parent.stack, rng);
    }
    let seed = if rng.gen_bool(0.3) {
        rng.gen_range(0..64u64)
    } else {
        parent.seed
    };
    let spec = scenario.to_string();
    let reparsed = Scenario::parse(&spec)?;
    reparsed.validate_attacks(registry).ok()?;
    Some(CorpusEntry {
        stack: parent.stack,
        seed,
        spec,
    })
}

/// One invariant violation the search surfaced, before shrinking.
#[derive(Debug, Clone)]
pub struct FoundViolation {
    /// The violating corpus entry.
    pub entry: CorpusEntry,
    /// Signature of the bug ([`violation_signature`]).
    pub signature: u64,
    /// The violating run's report.
    pub report: CellReport,
}

/// What one search round did.
#[derive(Debug, Default)]
pub struct RoundOutcome {
    /// Candidates executed.
    pub executed: usize,
    /// Candidates that entered the corpus (new coverage).
    pub added: usize,
    /// Invariant violations found this round (deduplicated by signature).
    pub violations: Vec<FoundViolation>,
}

/// Runs one search round: breed `runs` candidates from the corpus, run
/// each instrumented, keep the interesting ones, report the violating
/// ones. Deterministic in `(corpus contents, round_seed, runs, budget)`.
pub fn search_round(
    corpus: &mut Corpus,
    registry: &AttackRegistry,
    round_seed: u64,
    runs: usize,
    budget: u64,
) -> RoundOutcome {
    if corpus.entries.is_empty() {
        corpus.seed_defaults();
    }
    let mut rng = ChaCha12Rng::seed_from_u64(round_seed);
    let mut outcome = RoundOutcome::default();
    let mut seen_signatures = BTreeSet::new();
    let mut bred = 0usize;
    // Each breeding attempt may be discarded by the re-parse; bound the
    // total attempts so a degenerate corpus cannot loop forever.
    while outcome.executed < runs && bred < runs * 8 {
        bred += 1;
        let parent = corpus.entries[rng.gen_range(0..corpus.entries.len())].clone();
        let mate = if rng.gen_bool(0.2) {
            let m = corpus.entries[rng.gen_range(0..corpus.entries.len())].clone();
            (m.stack == parent.stack).then_some(m)
        } else {
            None
        };
        let Some(candidate) = breed(&parent, mate.as_ref(), registry, &mut rng) else {
            continue;
        };
        let scenario = Scenario::parse(&candidate.spec).expect("bred specs re-parse");
        let run = run_cell_instrumented(
            candidate.stack,
            &scenario,
            candidate.seed,
            registry,
            budget,
            TraceMode::Ring(SEARCH_TRACE_RING),
        );
        outcome.executed += 1;
        let features = coverage_features(candidate.stack, &run);
        if corpus.add_if_interesting(candidate.clone(), &features, run.report.fingerprint) {
            outcome.added += 1;
        }
        if !run.report.violations.is_empty() {
            let signature = violation_signature(candidate.stack, &run.report);
            if seen_signatures.insert(signature) {
                outcome.violations.push(FoundViolation {
                    entry: candidate,
                    signature,
                    report: run.report,
                });
            }
        }
    }
    outcome
}

/// A shrunk violation: the minimal scenario the shrinker reached that
/// still reproduces the original violation signature.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized entry (re-parses; replaying it reproduces `report`).
    pub entry: CorpusEntry,
    /// The preserved bug signature.
    pub signature: u64,
    /// The minimized run's report.
    pub report: CellReport,
    /// Shrink candidates evaluated.
    pub attempts: usize,
}

/// Token count of a spec string — the shrinker's size measure (fields and
/// plan entries, so dropping a corruption or the adaptive spec always
/// shrinks).
pub fn spec_tokens(spec: &str) -> usize {
    spec.split([',', ';']).count()
}

/// Shrinks a violating `(stack, spec, seed)` to a minimal spec with the
/// same violation signature: greedily drop corruptions and the adaptive
/// spec, normalize scheduler and backend, reduce `n` — re-running each
/// candidate and keeping it only if it still violates identically and is
/// no larger. Returns `None` if the input doesn't violate at all.
pub fn shrink(
    stack: StackKind,
    spec: &str,
    seed: u64,
    registry: &AttackRegistry,
    budget: u64,
) -> Option<Shrunk> {
    let scenario = Scenario::parse(spec)?;
    let report = run_cell_budgeted(stack, &scenario, seed, registry, budget);
    if report.violations.is_empty() {
        return None;
    }
    let signature = violation_signature(stack, &report);
    let mut current = (spec.to_string(), report);
    let mut attempts = 0usize;
    loop {
        let mut improved = false;
        for candidate in shrink_candidates(&current.0) {
            if spec_tokens(&candidate) > spec_tokens(&current.0) {
                continue;
            }
            let Some(parsed) = Scenario::parse(&candidate) else {
                continue;
            };
            if parsed.validate_attacks(registry).is_err() {
                continue;
            }
            attempts += 1;
            let cand_report = run_cell_budgeted(stack, &parsed, seed, registry, budget);
            if cand_report.violations.is_empty()
                || violation_signature(stack, &cand_report) != signature
            {
                continue;
            }
            current = (candidate, cand_report);
            improved = true;
            break; // restart the pass from the smaller spec
        }
        if !improved {
            break;
        }
    }
    Some(Shrunk {
        entry: CorpusEntry {
            stack,
            seed,
            spec: current.0,
        },
        signature,
        report: current.1,
        attempts,
    })
}

/// The shrink moves from `spec`, most aggressive first: drop each static
/// corruption, drop the adaptive spec, normalize the scheduler to
/// `random` and the backend to `sim`, then reduce `n` (smallest first).
fn shrink_candidates(spec: &str) -> Vec<String> {
    let Some(scenario) = Scenario::parse(spec) else {
        return Vec::new();
    };
    let mut candidates = Vec::new();
    for i in 0..scenario.corruptions.len() {
        let mut s = scenario.clone();
        s.corruptions.remove(i);
        candidates.push(s.to_string());
    }
    if scenario.adaptive.is_some() {
        let mut s = scenario.clone();
        s.adaptive = None;
        candidates.push(s.to_string());
    }
    if scenario.sched != "random" {
        let mut s = scenario.clone();
        s.sched = "random".to_string();
        candidates.push(s.to_string());
    }
    if scenario.rt != "sim" {
        let mut s = scenario.clone();
        s.rt = "sim".to_string();
        candidates.push(s.to_string());
    }
    for n in 4..scenario.n {
        let t = (n - 1) / 3;
        let mut s = scenario.clone();
        s.n = n;
        s.t = t;
        s.corruptions.retain(|c| c.party.0 < n);
        s.corruptions.truncate(t);
        candidates.push(s.to_string());
    }
    candidates.retain(|c| c != spec);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::standard_registry;

    #[test]
    fn corpus_lines_round_trip() {
        let entry = CorpusEntry {
            stack: StackKind::SvssChain,
            seed: 11,
            spec: "n=7,t=2,corrupt=silent@3;adaptive:core-candidates@*,sched=lifo,rt=wire"
                .to_string(),
        };
        assert_eq!(CorpusEntry::from_line(&entry.to_line()), Some(entry));
        assert_eq!(CorpusEntry::from_line("ba 3 not-a-spec"), None);
        assert_eq!(CorpusEntry::from_line("nope 3 n=4,t=1"), None);
    }

    #[test]
    fn violation_classes_normalize_wording() {
        assert_eq!(
            violation_class("ba: run did not quiesce (StepLimit)"),
            "quiesce"
        );
        assert_eq!(
            violation_class("rec: message conservation broken (sent 3 != ...)"),
            "conservation"
        );
        assert_eq!(
            violation_class("termination: honest outputs [None]"),
            "termination"
        );
        assert_eq!(violation_class("deploy: no such attack"), "deploy");
        assert_eq!(violation_class("weird-new-thing: x"), "weird-new-thing");
    }

    #[test]
    fn search_round_is_deterministic() {
        let registry = standard_registry();
        let mut a = Corpus::new();
        let mut b = Corpus::new();
        let out_a = search_round(&mut a, &registry, 42, 6, SEARCH_STEP_BUDGET);
        let out_b = search_round(&mut b, &registry, 42, 6, SEARCH_STEP_BUDGET);
        assert_eq!(out_a.executed, out_b.executed);
        assert_eq!(out_a.added, out_b.added);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn planted_storm_is_found_and_shrunk() {
        // The planted bug: an adaptive pin policy that storms (a corrupted
        // party re-sending itself garbage on every activation) never
        // quiesces — StepLimit plus broken conservation, on any backend.
        let registry = standard_registry();
        let spec =
            "n=7,t=2,corrupt=garbage:9@5;adaptive:pin:storm:2@*,sched=net:lat=2..6,rt=sharded:2";
        let shrunk = shrink(StackKind::Ba, spec, 5, &registry, 200_000)
            .expect("the planted storm must violate");
        assert!(
            spec_tokens(&shrunk.entry.spec) < spec_tokens(spec),
            "{}",
            shrunk.entry.spec
        );
        // The minimal spec keeps the adaptive storm (it IS the bug) but
        // sheds the decoy corruption and the exotic scheduler/backend.
        assert!(
            shrunk.entry.spec.contains("adaptive:pin:storm"),
            "{}",
            shrunk.entry.spec
        );
        assert!(
            !shrunk.entry.spec.contains("garbage"),
            "{}",
            shrunk.entry.spec
        );
        // Replay: the shrunk spec reproduces the same signature.
        let replay = run_cell_budgeted(
            StackKind::Ba,
            &Scenario::parse(&shrunk.entry.spec).unwrap(),
            5,
            &registry,
            200_000,
        );
        assert_eq!(
            violation_signature(StackKind::Ba, &replay),
            shrunk.signature
        );
        assert_eq!(replay.fingerprint, shrunk.report.fingerprint);
    }
}
