//! The common subset protocol — Algorithm 4 / Appendix C of the paper.

use crate::config::CoinKind;
use aft_ba::BinaryBa;
use aft_sim::{Context, PartyId, Payload, SessionTag};
use std::collections::{HashMap, HashSet};

/// Session tag kind of the embedded per-party BA instances.
pub const CS_BA_TAG: &str = "cs-ba";

/// An embedded `CommonSubset(Q, k)` component (Definition 3.4).
///
/// `CommonSubset` agrees on a set `S ⊆ [n]`, `|S| ≥ k`, such that every
/// `j ∈ S` had its dynamic predicate `Q(j)` set by at least one nonfaulty
/// party. The paper's Algorithm 4 runs one binary BA per candidate party:
///
/// 1. when `Q(j)` flips to 1 and fewer than `k` BAs have output 1, join
///    `BA_j` with input 1;
/// 2. every `BA_j` that outputs 1 increments the counter;
/// 3. once the counter reaches `k`, join every remaining `BA_j` with
///    input 0;
/// 4. when all `n` BAs have output, output `S = {j : BA_j = 1}`.
///
/// The component is *embedded*: the owning protocol instance forwards
/// predicate flips via [`CommonSubset::set_predicate`] and BA child
/// outputs via [`CommonSubset::on_child_output`] (children are tagged
/// `(CS_BA_TAG, tag_base + j)` in the owner's session). This mirrors the
/// paper, where `Q_i` is local state of the calling protocol.
pub struct CommonSubset {
    k: usize,
    /// Base offset for child tags (lets one owner run several subsets).
    tag_base: u64,
    coin: CoinKind,
    predicate: HashSet<usize>,
    started: HashSet<usize>,
    outputs: HashMap<usize, bool>,
    ones: usize,
    /// Set once the count reached `k` and the zero-phase ran.
    zero_phase_done: bool,
    result: Option<Vec<PartyId>>,
}

impl CommonSubset {
    /// Creates a subset component requiring at least `k` members. BA
    /// children are tagged `(CS_BA_TAG, tag_base + j)` and flip `coin`
    /// coins.
    pub fn new(k: usize, tag_base: u64, coin: CoinKind) -> Self {
        CommonSubset {
            k,
            tag_base,
            coin,
            predicate: HashSet::new(),
            started: HashSet::new(),
            outputs: HashMap::new(),
            ones: 0,
            zero_phase_done: false,
            result: None,
        }
    }

    /// The agreed subset, once all BAs terminated.
    pub fn result(&self) -> Option<&[PartyId]> {
        self.result.as_deref()
    }

    /// Owner callback: the dynamic predicate `Q(j)` became 1.
    ///
    /// Returns `true` if the call changed anything (idempotent otherwise).
    pub fn set_predicate(&mut self, j: usize, ctx: &mut Context<'_>) -> bool {
        if !self.predicate.insert(j) {
            return false;
        }
        if self.ones < self.k {
            self.start_ba(j, true, ctx);
        }
        true
    }

    /// Owner callback for child outputs. Returns `Some(S)` exactly once,
    /// when the subset is decided.
    ///
    /// Non-`CS_BA_TAG` children and foreign tag ranges are ignored, so the
    /// owner can forward everything it receives.
    pub fn on_child_output(
        &mut self,
        child: &SessionTag,
        output: &Payload,
        ctx: &mut Context<'_>,
    ) -> Option<Vec<PartyId>> {
        if child.kind != CS_BA_TAG || self.result.is_some() {
            return None;
        }
        let n = ctx.n();
        if child.index < self.tag_base || child.index >= self.tag_base + n as u64 {
            return None;
        }
        let j = (child.index - self.tag_base) as usize;
        let &b = output.downcast_ref::<bool>()?;
        if self.outputs.insert(j, b).is_some() {
            return None;
        }
        if b {
            self.ones += 1;
        }
        if self.ones >= self.k && !self.zero_phase_done {
            self.zero_phase_done = true;
            for m in 0..n {
                if !self.started.contains(&m) {
                    self.start_ba(m, false, ctx);
                }
            }
        }
        if self.outputs.len() == n {
            let mut s: Vec<PartyId> = (0..n).filter(|j| self.outputs[j]).map(PartyId).collect();
            s.sort();
            self.result = Some(s.clone());
            return Some(s);
        }
        None
    }

    fn start_ba(&mut self, j: usize, input: bool, ctx: &mut Context<'_>) {
        if !self.started.insert(j) {
            return;
        }
        let idx = self.tag_base + j as u64;
        ctx.spawn(
            SessionTag::new(CS_BA_TAG, idx),
            Box::new(BinaryBa::new(input, self.coin.make(idx))),
        );
    }
}

/// A standalone instance wrapper around [`CommonSubset`] whose predicate
/// flips on plain `PredicateMsg(j)` network messages *from party `j`
/// itself* — used by tests and benchmarks to exercise Definition 3.4
/// directly ("`Q_i(j)` = party `j` announced itself to `i`").
pub struct CommonSubsetInstance {
    cs: CommonSubset,
    announce: bool,
}

/// Announcement message used by [`CommonSubsetInstance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredicateMsg;

impl aft_sim::WireMessage for PredicateMsg {
    const KIND: u16 = aft_sim::wire::KIND_CORE_BASE;
    const KIND_NAME: &'static str = "cs-predicate";
    const MAX_BODY_HINT: Option<usize> = Some(0);
    fn encode_body(&self, _out: &mut Vec<u8>) {}
    fn decode_body(bytes: &[u8]) -> Option<Self> {
        bytes.is_empty().then_some(PredicateMsg)
    }
}

impl CommonSubsetInstance {
    /// Creates the wrapper; if `announce` is true the party announces
    /// itself on start (setting everyone's `Q(me)`).
    pub fn new(k: usize, coin: CoinKind, announce: bool) -> Self {
        CommonSubsetInstance {
            cs: CommonSubset::new(k, 0, coin),
            announce,
        }
    }
}

impl aft_sim::Instance for CommonSubsetInstance {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.announce {
            ctx.send_all(PredicateMsg);
        }
    }

    fn on_message(&mut self, from: PartyId, payload: &Payload, ctx: &mut Context<'_>) {
        if payload.to_msg::<PredicateMsg>().is_some() {
            self.cs.set_predicate(from.0, ctx);
        }
    }

    fn on_child_output(&mut self, child: &SessionTag, output: &Payload, ctx: &mut Context<'_>) {
        if let Some(s) = self.cs.on_child_output(child, output, ctx) {
            ctx.output(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_sim::{Context, Instance, NetConfig, PartyId, RandomScheduler, SessionId, SimNetwork};

    /// Drives a CommonSubset component through its owner-facing API inside
    /// a real network (predicates all set at start).
    struct Harness {
        cs: CommonSubset,
    }
    impl Instance for Harness {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for j in 0..ctx.n() {
                self.cs.set_predicate(j, ctx);
            }
        }
        fn on_message(&mut self, _f: PartyId, _p: &aft_sim::Payload, _c: &mut Context<'_>) {}
        fn on_child_output(
            &mut self,
            child: &SessionTag,
            output: &aft_sim::Payload,
            ctx: &mut Context<'_>,
        ) {
            if let Some(s) = self.cs.on_child_output(child, output, ctx) {
                ctx.output(s);
            }
        }
    }

    fn sid() -> SessionId {
        SessionId::root().child(SessionTag::new("csu", 0))
    }

    #[test]
    fn component_with_all_predicates_outputs_full_set() {
        let (n, t) = (4usize, 1usize);
        let mut net = SimNetwork::new(NetConfig::new(n, t, 1), Box::new(RandomScheduler));
        for p in 0..n {
            net.spawn(
                PartyId(p),
                sid(),
                Box::new(Harness {
                    cs: CommonSubset::new(n - t, 0, CoinKind::Oracle(5)),
                }),
            );
        }
        net.run(100_000_000);
        for p in 0..n {
            let s = net
                .output_as::<Vec<PartyId>>(PartyId(p), &sid())
                .expect("component terminates");
            assert!(s.len() >= n - t);
        }
    }

    #[test]
    fn set_predicate_is_idempotent() {
        let mut net = SimNetwork::new(NetConfig::new(4, 1, 2), Box::new(RandomScheduler));
        struct Idem;
        impl Instance for Idem {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let mut cs = CommonSubset::new(3, 0, CoinKind::Oracle(1));
                assert!(cs.set_predicate(2, ctx));
                assert!(!cs.set_predicate(2, ctx), "second set is a no-op");
                assert!(cs.result().is_none());
                ctx.output(0u8);
            }
            fn on_message(&mut self, _f: PartyId, _p: &aft_sim::Payload, _c: &mut Context<'_>) {}
        }
        net.spawn(PartyId(0), sid(), Box::new(Idem));
        net.run(10_000);
        assert!(net.output(PartyId(0), &sid()).is_some());
    }

    #[test]
    fn foreign_child_tags_ignored() {
        let mut net = SimNetwork::new(NetConfig::new(4, 1, 3), Box::new(RandomScheduler));
        struct Foreign;
        impl Instance for Foreign {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let mut cs = CommonSubset::new(3, 100, CoinKind::Oracle(1));
                // Wrong kind.
                let out = cs.on_child_output(
                    &SessionTag::new("not-cs", 100),
                    &aft_sim::Payload::new(true),
                    ctx,
                );
                assert!(out.is_none());
                // Right kind, wrong index range (tag_base = 100, n = 4).
                let out = cs.on_child_output(
                    &SessionTag::new(CS_BA_TAG, 5),
                    &aft_sim::Payload::new(true),
                    ctx,
                );
                assert!(out.is_none());
                // Right range, wrong payload type.
                let out = cs.on_child_output(
                    &SessionTag::new(CS_BA_TAG, 101),
                    &aft_sim::Payload::new("junk"),
                    ctx,
                );
                assert!(out.is_none());
                ctx.output(1u8);
            }
            fn on_message(&mut self, _f: PartyId, _p: &aft_sim::Payload, _c: &mut Context<'_>) {}
        }
        net.spawn(PartyId(0), sid(), Box::new(Foreign));
        net.run(10_000);
        assert!(net.output(PartyId(0), &sid()).is_some());
    }
}
