//! # aft-core
//!
//! The primary contribution of *Revisiting Asynchronous Fault Tolerant
//! Computation with Optimal Resilience* (Abraham–Dolev–Stern, PODC 2020),
//! implemented over the `aft` substrate crates:
//!
//! * [`CommonSubset`] — Algorithm 4 / Appendix C: agree on a set of ≥ k
//!   parties whose dynamic predicate some honest party observed.
//! * [`CoinFlip`] — Algorithm 1 (Theorem 3.5): an ε-biased,
//!   **almost-surely terminating strong common coin** — all parties output
//!   the *same* bit, each outcome has probability ≥ ½ − ε. This is the
//!   functionality the paper shows is achievable at `n = 3t + 1` even
//!   though AVSS is not (its Theorem 2.2, see `aft-lowerbound`).
//! * [`FairChoice`] — Algorithm 2 (Theorem 4.3): pick one of `m`
//!   alternatives such that any majority subset is hit with
//!   probability > ½.
//! * [`Fba`] — Algorithm 3 (Theorem 4.5): multivalued Byzantine agreement
//!   with **fair validity** — when honest inputs differ, the output is
//!   some honest party's input with probability ≥ ½. The first of its
//!   kind in the information-theoretic setting.
//!
//! # Example: four parties flip one strong coin
//!
//! ```
//! use aft_core::{CoinFlip, CoinFlipOutput, CoinFlipParams, CoinKind};
//! use aft_sim::{NetConfig, PartyId, RandomScheduler, SessionId, SessionTag, SimNetwork};
//!
//! let (n, t) = (4, 1);
//! let mut net = SimNetwork::new(NetConfig::new(n, t, 11), Box::new(RandomScheduler));
//! let sid = SessionId::root().child(SessionTag::new("coin", 0));
//! for p in 0..n {
//!     net.spawn(
//!         PartyId(p),
//!         sid.clone(),
//!         Box::new(CoinFlip::new(
//!             CoinFlipParams::FixedK { k: 2 },
//!             CoinKind::Oracle(3),
//!         )),
//!     );
//! }
//! net.run(50_000_000);
//! let coins: Vec<bool> = (0..n)
//!     .map(|p| net.output_as::<CoinFlipOutput>(PartyId(p), &sid).expect("terminates").value)
//!     .collect();
//! assert!(coins.windows(2).all(|w| w[0] == w[1]), "strong: all agree");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod beacon;
mod coin_flip;
mod common_subset;
mod config;
mod fair_choice;
mod fba;
pub mod scenarios;
pub mod search;

pub use beacon::{Beacon, BeaconOutput};
pub use coin_flip::{CoinFlip, CoinFlipOutput, CoinFlipParams};
pub use common_subset::{CommonSubset, CommonSubsetInstance, PredicateMsg, CS_BA_TAG};
pub use config::CoinKind;
pub use fair_choice::{fair_choice_parameters, FairChoice, FairChoiceParams};
pub use fba::Fba;
