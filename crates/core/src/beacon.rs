//! A randomness beacon: a stream of strong common coins.
//!
//! The classic application of the paper's `CoinFlip` — repeated agreed,
//! unpredictable bits for leader rotation, lotteries and committee
//! sampling. Epochs run sequentially; the instance outputs the whole
//! bitstring when the last epoch completes, and each epoch's bit is also
//! recorded under its own child session for streaming consumers.

use crate::coin_flip::{CoinFlip, CoinFlipOutput, CoinFlipParams};
use crate::config::CoinKind;
use aft_sim::{Context, Instance, PartyId, Payload, SessionTag};

/// Session tag kind of the beacon's epochs (`index = epoch`).
const EPOCH_TAG: &str = "beacon-epoch";

/// The completed beacon output: one agreed bit per epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeaconOutput {
    /// The agreed bits, in epoch order.
    pub bits: Vec<bool>,
}

impl BeaconOutput {
    /// Packs the first 64 bits into an integer (e.g. for seeding).
    pub fn as_u64(&self) -> u64 {
        self.bits
            .iter()
            .take(64)
            .fold(0u64, |acc, &b| (acc << 1) | u64::from(b))
    }
}

/// One party's beacon instance: `epochs` sequential [`CoinFlip`]s.
///
/// All properties are inherited per epoch from Theorem 3.5: every bit is
/// agreed by all honest parties, has bias at most ε, and arrives
/// almost-surely.
///
/// # Examples
///
/// ```
/// use aft_core::{Beacon, BeaconOutput, CoinFlipParams, CoinKind};
/// use aft_sim::{NetConfig, PartyId, RandomScheduler, SessionId, SessionTag, SimNetwork};
///
/// let (n, t) = (4, 1);
/// let mut net = SimNetwork::new(NetConfig::new(n, t, 5), Box::new(RandomScheduler));
/// let sid = SessionId::root().child(SessionTag::new("beacon", 0));
/// for p in 0..n {
///     net.spawn(PartyId(p), sid.clone(), Box::new(Beacon::new(
///         3,
///         CoinFlipParams::FixedK { k: 1 },
///         CoinKind::Oracle(9),
///     )));
/// }
/// net.run(u64::MAX);
/// let out = net.output_as::<BeaconOutput>(PartyId(0), &sid).unwrap();
/// assert_eq!(out.bits.len(), 3);
/// for p in 1..n {
///     assert_eq!(net.output_as::<BeaconOutput>(PartyId(p), &sid), Some(out));
/// }
/// ```
pub struct Beacon {
    epochs: u32,
    params: CoinFlipParams,
    coin: CoinKind,
    bits: Vec<bool>,
    done: bool,
}

impl Beacon {
    /// Creates a beacon producing `epochs` bits.
    ///
    /// # Panics
    ///
    /// Panics if `epochs == 0`.
    pub fn new(epochs: u32, params: CoinFlipParams, coin: CoinKind) -> Self {
        assert!(epochs > 0, "a beacon needs at least one epoch");
        Beacon {
            epochs,
            params,
            coin,
            bits: Vec::new(),
            done: false,
        }
    }

    fn start_epoch(&mut self, ctx: &mut Context<'_>) {
        let e = self.bits.len() as u64;
        ctx.spawn(
            SessionTag::new(EPOCH_TAG, e),
            Box::new(CoinFlip::new(self.params, self.coin)),
        );
    }
}

impl Instance for Beacon {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.start_epoch(ctx);
    }

    fn on_message(&mut self, _from: PartyId, _payload: &Payload, _ctx: &mut Context<'_>) {}

    fn on_child_output(&mut self, child: &SessionTag, output: &Payload, ctx: &mut Context<'_>) {
        if child.kind != EPOCH_TAG || self.done {
            return;
        }
        if child.index != self.bits.len() as u64 {
            return;
        }
        let Some(out) = output.downcast_ref::<CoinFlipOutput>() else {
            return;
        };
        self.bits.push(out.value);
        if self.bits.len() < self.epochs as usize {
            self.start_epoch(ctx);
        } else {
            self.done = true;
            ctx.output(BeaconOutput {
                bits: self.bits.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_rejected() {
        let _ = Beacon::new(0, CoinFlipParams::FixedK { k: 1 }, CoinKind::Local);
    }

    #[test]
    fn beacon_output_packs_bits() {
        let out = BeaconOutput {
            bits: vec![true, false, true, true],
        };
        assert_eq!(out.as_u64(), 0b1011);
    }
}
