//! Shared protocol configuration.

use aft_ba::{CoinSource, LocalCoin, OracleCoin, WeakSharedCoin};

/// Which common-coin source the embedded BA instances use.
///
/// The paper's construction corresponds to [`CoinKind::WeakShared`] (the
/// BA of its reference \[2\] flips an SVSS-based coin); [`CoinKind::Oracle`]
/// is an ideal-functionality substitute used for ablations (experiment E9)
/// and fast tests; [`CoinKind::Local`] is the Ben-Or baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoinKind {
    /// Private per-party coins (Ben-Or'83 baseline).
    Local,
    /// Ideal common coin derived from the given salt.
    Oracle(u64),
    /// SVSS-based weak shared coin (the information-theoretic
    /// configuration).
    WeakShared,
}

/// SplitMix64 finalizer, for decorrelating per-instance oracle salts.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CoinKind {
    /// Builds a coin source for the BA instance identified by `idx`
    /// (oracle salts are decorrelated per instance).
    pub fn make(&self, idx: u64) -> Box<dyn CoinSource> {
        match *self {
            CoinKind::Local => Box::new(LocalCoin),
            CoinKind::Oracle(salt) => Box::new(OracleCoin::new(salt ^ mix(idx))),
            CoinKind::WeakShared => Box::new(WeakSharedCoin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_produces_named_sources() {
        assert_eq!(CoinKind::Local.make(0).name(), "local");
        assert_eq!(CoinKind::Oracle(1).make(0).name(), "oracle");
        assert_eq!(CoinKind::WeakShared.make(0).name(), "weak-shared");
    }

    #[test]
    fn mix_spreads_indices() {
        // Adjacent indices must map to very different salts.
        let a = mix(1);
        let b = mix(2);
        assert_ne!(a, b);
        assert!(((a ^ b).count_ones()) > 8);
    }
}
