//! `CoinFlip(ε)` — the paper's Algorithm 1: an ε-biased, almost-surely
//! terminating **strong common coin** (Theorem 3.5).

use crate::common_subset::CommonSubset;
use crate::config::CoinKind;
use aft_ba::BinaryBa;
use aft_field::Fp;
use aft_sim::{Context, Instance, PartyId, Payload, SessionTag};
use aft_svss::{ShareBundle, SvssRec, SvssShare};
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Session tag kinds of CoinFlip children (`index = round * n + dealer`
/// for the per-dealer ones, `round` for the subset, `0` for the final BA).
const SHARE_TAG: &str = "cf-share";
const REC_TAG: &str = "cf-rec";
const FINAL_BA_TAG: &str = "cf-final";

/// How many SVSS iterations the coin runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoinFlipParams {
    /// The paper's prescription: `k = 4 ⌈(e/(ε·π))² · n⁴⌉` iterations for
    /// an ε-biased coin. This drowns the fewer-than-`n²` possible SVSS
    /// shun-failures in the binomial tail.
    PaperExact {
        /// Target bias bound ε ∈ (0, ½).
        epsilon: f64,
    },
    /// A fixed iteration count: used for statistically-scaled experiments
    /// (EXPERIMENTS.md documents the relation to the paper-exact mode) and
    /// affordable tests.
    FixedK {
        /// Number of iterations (must be ≥ 1).
        k: usize,
    },
}

impl CoinFlipParams {
    /// Resolves the iteration count for an `n`-party system.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ (0, ½)` or `k == 0`.
    pub fn iterations(&self, n: usize) -> usize {
        match *self {
            CoinFlipParams::PaperExact { epsilon } => {
                assert!(
                    epsilon > 0.0 && epsilon < 0.5,
                    "epsilon must be in (0, 1/2)"
                );
                let c = std::f64::consts::E / (epsilon * std::f64::consts::PI);
                let n4 = (n as f64).powi(4);
                4 * (c * c * n4).ceil() as usize
            }
            CoinFlipParams::FixedK { k } => {
                assert!(k >= 1, "k must be at least 1");
                k
            }
        }
    }
}

/// Outcome summary a [`CoinFlip`] instance attaches to its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoinFlipOutput {
    /// The agreed coin value.
    pub value: bool,
    /// This party's pre-BA majority bit (diagnostics: how often the final
    /// BA had unanimous inputs).
    pub local_majority: bool,
    /// Number of iterations executed.
    pub iterations: u32,
}

/// One party's strong-common-coin instance (Algorithm 1).
///
/// Per iteration `r`: every party deals an SVSS of a uniform bit;
/// `CommonSubset` (with `Q_ir(j)` = "`SVSS-Share_jr` completed", `k = n−t`)
/// agrees on a dealer set `S_r`; every `j ∈ S_r` is reconstructed and
/// `b′_ir = ⊕_{j∈S_r} (b_ijr mod 2)`. After `k` iterations the party feeds
/// `majority_r(b′_ir)` into one final binary BA and outputs its result.
///
/// * All parties that complete output the **same** bit (BA correctness) —
///   the *strong* part, impossible for weak coins.
/// * Each outcome has probability ≥ ½ − ε (Theorem 3.5): every `S_r`
///   contains a nonfaulty dealer whose hidden uniform bit makes the XOR
///   uniform, failures are bounded by the global `< n²` shun budget, and
///   `k` is large enough that the majority is robust to that many flipped
///   rounds.
/// * Almost-surely terminating: every sub-protocol is.
pub struct CoinFlip {
    params: CoinFlipParams,
    coin: CoinKind,
    k: usize,
    round: usize,
    /// Share bundles completed this round (dealer → bundle).
    bundles: HashMap<usize, ShareBundle>,
    cs: CommonSubset,
    subset: Option<Vec<PartyId>>,
    recs_spawned: HashSet<usize>,
    rec_values: HashMap<usize, Fp>,
    /// Per-round XOR results.
    round_bits: Vec<bool>,
    final_started: bool,
    done: bool,
}

impl CoinFlip {
    /// Creates the instance. `coin` selects the coin source of the
    /// *embedded* BA instances (the paper's construction is
    /// [`CoinKind::WeakShared`]; see DESIGN.md §1 for the ablation modes).
    pub fn new(params: CoinFlipParams, coin: CoinKind) -> Self {
        CoinFlip {
            params,
            coin,
            k: 0,
            round: 0,
            bundles: HashMap::new(),
            cs: CommonSubset::new(0, 0, coin), // re-built per round
            subset: None,
            recs_spawned: HashSet::new(),
            rec_values: HashMap::new(),
            round_bits: Vec::new(),
            final_started: false,
            done: false,
        }
    }

    fn idx(&self, n: usize, j: usize) -> u64 {
        (self.round * n + j) as u64
    }

    fn start_round(&mut self, ctx: &mut Context<'_>) {
        let (n, t) = (ctx.n(), ctx.t());
        let me = ctx.me();
        self.bundles.clear();
        self.subset = None;
        self.recs_spawned.clear();
        self.rec_values.clear();
        self.cs = CommonSubset::new(n - t, (self.round * n) as u64, self.coin);
        let my_bit: bool = ctx.rng().gen();
        for d in ctx.parties().collect::<Vec<_>>() {
            let inst: Box<dyn Instance> = if d == me {
                Box::new(SvssShare::dealer(me, Fp::from(my_bit)))
            } else {
                Box::new(SvssShare::party(d))
            };
            ctx.spawn(SessionTag::new(SHARE_TAG, self.idx(n, d.0)), inst);
        }
    }

    fn try_spawn_recs(&mut self, ctx: &mut Context<'_>) {
        let n = ctx.n();
        let Some(subset) = self.subset.clone() else {
            return;
        };
        for &j in &subset {
            if !self.recs_spawned.contains(&j.0) {
                if let Some(bundle) = self.bundles.get(&j.0) {
                    self.recs_spawned.insert(j.0);
                    ctx.spawn(
                        SessionTag::new(REC_TAG, self.idx(n, j.0)),
                        Box::new(SvssRec::new(bundle.clone())),
                    );
                }
            }
        }
    }

    fn try_finish_round(&mut self, ctx: &mut Context<'_>) {
        let Some(subset) = self.subset.clone() else {
            return;
        };
        if !subset.iter().all(|j| self.rec_values.contains_key(&j.0)) {
            return;
        }
        // b'_r = XOR over the subset of (value mod 2).
        let bit = subset.iter().fold(false, |acc, j| {
            acc ^ (self.rec_values[&j.0].value() & 1 == 1)
        });
        self.round_bits.push(bit);
        self.round += 1;
        if self.round < self.k {
            self.start_round(ctx);
        } else if !self.final_started {
            self.final_started = true;
            let ones = self.round_bits.iter().filter(|&&b| b).count();
            let majority = ones * 2 > self.k;
            ctx.spawn(
                SessionTag::new(FINAL_BA_TAG, 0),
                Box::new(BinaryBa::new(majority, self.coin.make(u64::MAX))),
            );
        }
    }
}

impl Instance for CoinFlip {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.k = self.params.iterations(ctx.n());
        self.start_round(ctx);
    }

    fn on_message(&mut self, _from: PartyId, _payload: &Payload, _ctx: &mut Context<'_>) {
        // All communication happens inside child protocols.
    }

    fn on_child_output(&mut self, child: &SessionTag, output: &Payload, ctx: &mut Context<'_>) {
        let n = ctx.n();
        match child.kind {
            SHARE_TAG => {
                // Only current-round completions matter (older rounds are
                // finished; SVSS share instances of past rounds may
                // complete late and are ignored).
                let round = child.index as usize / n;
                let dealer = child.index as usize % n;
                if round != self.round {
                    return;
                }
                if let Some(bundle) = output.downcast_ref::<ShareBundle>() {
                    self.bundles.insert(dealer, bundle.clone());
                    // Q_ir(dealer) := 1
                    self.cs.set_predicate(dealer, ctx);
                    self.try_spawn_recs(ctx);
                }
            }
            REC_TAG => {
                let round = child.index as usize / n;
                let dealer = child.index as usize % n;
                if round != self.round {
                    return;
                }
                if let Some(v) = output.downcast_ref::<Fp>() {
                    self.rec_values.insert(dealer, *v);
                    self.try_finish_round(ctx);
                }
            }
            FINAL_BA_TAG => {
                if self.done {
                    return;
                }
                if let Some(&value) = output.downcast_ref::<bool>() {
                    self.done = true;
                    let ones = self.round_bits.iter().filter(|&&b| b).count();
                    ctx.output(CoinFlipOutput {
                        value,
                        local_majority: ones * 2 > self.k,
                        iterations: self.k as u32,
                    });
                }
            }
            _ => {
                // CommonSubset BA children.
                if self.subset.is_none() {
                    if let Some(s) = self.cs.on_child_output(child, output, ctx) {
                        self.subset = Some(s);
                        self.try_spawn_recs(ctx);
                        self.try_finish_round(ctx);
                    }
                }
            }
        }
    }
}
