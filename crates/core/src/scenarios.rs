//! Standard adversarial-scenario stacks and their machine-stated
//! invariants.
//!
//! [`aft_sim::scenario`] defines *what* an adversary is (corruption plan,
//! scheduler, backend); this module defines *what it attacks* and *what
//! must survive*: the three reference protocol stacks, each with the
//! safety invariants the paper claims for it:
//!
//! | stack | deployment | invariants checked per run |
//! |---|---|---|
//! | [`StackKind::Ba`] | unanimous-input [`BinaryBa`] | quiescence, termination, agreement, validity, message conservation |
//! | [`StackKind::SvssChain`] | [`SvssShare`] → [`SvssRec`] | quiescence, share liveness & binding-to-dealt secret (honest dealer), binding-or-shun (faulty dealer), secrecy proxy (no single share reveals the secret), conservation |
//! | [`StackKind::CommonSubset`] | [`CommonSubsetInstance`] | quiescence, termination, output-set consistency, `|S| ≥ k`, members in range, conservation |
//!
//! [`standard_registry`] assembles the named attacks the protocol crates
//! export ([`aft_ba::attacks::register_attacks`],
//! [`aft_svss::attacks::register_attacks`]); [`run_cell`] executes one
//! `(scenario, seed)` cell of a [`ScenarioMatrix`](aft_sim::ScenarioMatrix)
//! sweep and returns a [`CellReport`] whose violations list is empty iff
//! every invariant held, and whose fingerprint supports bit-for-bit
//! cross-backend and re-run comparison.

use crate::config::CoinKind;
use crate::CommonSubsetInstance;
use aft_ba::{BinaryBa, OracleCoin};
use aft_field::Fp;
use aft_sim::{
    AttackRegistry, Fingerprint, Metrics, PartyId, Runtime, RuntimeExt, Scenario, SessionId,
    SessionTag, SilentInstance, StopReason, TraceEvent, TraceMode,
};
use aft_svss::{ShareBundle, SvssRec, SvssShare};
use std::path::{Path, PathBuf};

/// Builds the registry of every named attack the workspace's protocol
/// crates export. The conformance suite, the sweep driver and the
/// proptests all resolve scenario attack names through this.
///
/// As a side effect this also installs the workspace's wire codecs into
/// the process-global [`CodecRegistry`](aft_sim::CodecRegistry) (see
/// [`register_standard_codecs`]), so every code path that can run
/// scenario cells — including `rt=wire` cells built by name — resolves
/// frame kinds without further setup.
pub fn standard_registry() -> AttackRegistry {
    register_standard_codecs();
    let mut registry = AttackRegistry::new();
    aft_ba::attacks::register_attacks(&mut registry);
    aft_svss::attacks::register_attacks(&mut registry);
    registry
}

/// Installs every protocol crate's wire kinds into the process-global
/// codec registry (builtins are always present). Idempotent; call before
/// building `rt=wire` runtimes by name so their frames carry registered
/// kind names.
pub fn register_standard_codecs() {
    aft_sim::wire::register_global(|reg| {
        aft_broadcast::register_codecs(reg);
        aft_ba::register_codecs(reg);
        aft_svss::register_codecs(reg);
        reg.register::<crate::PredicateMsg>();
    });
}

/// Which reference stack a scenario cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackKind {
    /// Binary Byzantine agreement with unanimous honest inputs.
    Ba,
    /// SVSS share→reconstruct, two episodes on persistent node state.
    SvssChain,
    /// Common subset over self-announcing predicates.
    CommonSubset,
}

impl StackKind {
    /// Every reference stack.
    pub fn all() -> [StackKind; 3] {
        [StackKind::Ba, StackKind::SvssChain, StackKind::CommonSubset]
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            StackKind::Ba => "ba",
            StackKind::SvssChain => "svss",
            StackKind::CommonSubset => "common-subset",
        }
    }

    /// Inverse of [`StackKind::label`] — used by the search corpus, whose
    /// persisted entries name their stack by label.
    pub fn from_label(label: &str) -> Option<StackKind> {
        StackKind::all().into_iter().find(|k| k.label() == label)
    }

    /// The standard fault-plan axis for this stack (`corrupt=` values;
    /// `""` is the all-honest control row). Plans pair generic behaviours
    /// with the protocol's registered attacks.
    pub fn standard_plans(&self) -> &'static [&'static str] {
        match self {
            StackKind::Ba => &[
                "",
                "silent@3",
                "crash@1",
                "mute-after:6@2",
                "garbage:40@3",
                "equivocate:12@1",
                "random-voter@3",
                "fixed-voter:true@2",
            ],
            StackKind::SvssChain => &[
                "",
                "silent@3",
                "crash@3",
                "garbage:40@2",
                "equivocate:10@2",
                "silent-rec@3",
                "wrong-sigma@3",
                "wrong-sigma:reveal@3",
                "equivocal-reveal@3",
                "wrong-cross@2",
                "two-faced-dealer@0",
            ],
            StackKind::CommonSubset => &[
                "",
                "silent@3",
                "crash@3",
                "mute-after:8@2",
                "garbage:30@2",
                "equivocate:8@1",
            ],
        }
    }
}

/// The outcome of one `(scenario, seed)` cell: invariant violations (empty
/// iff the run was safe) plus a deterministic fingerprint of outputs and
/// metrics for cross-backend / re-run bit-equality checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellReport {
    /// Human-readable invariant violations; empty means the cell is safe.
    pub violations: Vec<String>,
    /// FNV fingerprint of all party outputs and the final metrics.
    pub fingerprint: u64,
    /// Total envelopes sent.
    pub sent: u64,
    /// Total envelopes delivered.
    pub delivered: u64,
    /// Delivery steps executed.
    pub steps: u64,
}

/// Runs one cell of `kind`'s stack under `scenario` with `seed`.
pub fn run_cell(
    kind: StackKind,
    scenario: &Scenario,
    seed: u64,
    registry: &AttackRegistry,
) -> CellReport {
    run_cell_budgeted(kind, scenario, seed, registry, STEP_BUDGET)
}

/// [`run_cell`] with an explicit step budget per episode. The search loop
/// uses a small budget so a planted non-quiescing scenario (e.g. an
/// adaptive storm) reports `StepLimit` + conservation violations quickly
/// instead of spinning for the full conformance budget.
pub fn run_cell_budgeted(
    kind: StackKind,
    scenario: &Scenario,
    seed: u64,
    registry: &AttackRegistry,
    budget: u64,
) -> CellReport {
    let mut rt = scenario.runtime(seed);
    run_cell_on(kind, rt.as_mut(), scenario, seed, registry, budget)
}

fn run_cell_on(
    kind: StackKind,
    rt: &mut dyn Runtime,
    scenario: &Scenario,
    seed: u64,
    registry: &AttackRegistry,
    budget: u64,
) -> CellReport {
    match kind {
        StackKind::Ba => run_ba_cell_on(rt, scenario, seed, registry, budget),
        StackKind::SvssChain => run_svss_cell_on(rt, scenario, seed, registry, budget),
        StackKind::CommonSubset => run_cs_cell_on(rt, scenario, seed, registry, budget),
    }
}

/// [`run_cell`] with the flight recorder attached: returns the cell
/// report plus the retained trace events. Because a cell is a pure
/// function of `(scenario, seed)` and tracing is observational, the
/// report is bit-for-bit identical to the untraced run — which is what
/// makes post-hoc forensics sound: any violating cell can be re-run
/// traced and yields the *same* violation.
pub fn run_cell_traced(
    kind: StackKind,
    scenario: &Scenario,
    seed: u64,
    registry: &AttackRegistry,
    mode: TraceMode,
) -> (CellReport, Vec<TraceEvent>) {
    let outcome = run_cell_instrumented(kind, scenario, seed, registry, STEP_BUDGET, mode);
    (outcome.report, outcome.events)
}

/// Everything one instrumented cell run produces: the report, the final
/// metrics snapshot (the coverage-signal source), retained trace events
/// and the adaptive adversary's final victim set.
pub struct CellOutcome {
    /// The cell report ([`run_cell`]'s return value, bit-identical).
    pub report: CellReport,
    /// Final metrics snapshot: per-kind send counts, decode misses,
    /// pool/wire counters, virtual times — the coverage-signal source.
    pub metrics: Metrics,
    /// Retained trace events (empty when `mode` is [`TraceMode::Off`]).
    pub events: Vec<TraceEvent>,
    /// Parties the adaptive adversary corrupted (static seeds included);
    /// empty for non-adaptive scenarios.
    pub victims: Vec<PartyId>,
}

/// The full-observability cell runner behind the coverage-guided search:
/// [`run_cell_budgeted`] plus the final [`Metrics`], the retained trace
/// events and the adaptive victim set.
pub fn run_cell_instrumented(
    kind: StackKind,
    scenario: &Scenario,
    seed: u64,
    registry: &AttackRegistry,
    budget: u64,
    mode: TraceMode,
) -> CellOutcome {
    let mut rt = scenario.runtime(seed);
    rt.set_trace(mode);
    let report = run_cell_on(kind, rt.as_mut(), scenario, seed, registry, budget);
    let metrics = rt.metrics();
    let victims = adaptive_victims(rt.as_ref());
    let events = rt.take_trace().map(|s| s.snapshot()).unwrap_or_default();
    CellOutcome {
        report,
        metrics,
        events,
        victims,
    }
}

/// The adaptive adversary's victim set so far (empty without a
/// controller). Invariant checkers subtract these from the honest set:
/// an adaptively corrupted party is Byzantine, and the paper's guarantees
/// are stated for the parties that *remain* honest.
fn adaptive_victims(rt: &dyn Runtime) -> Vec<PartyId> {
    rt.adaptive_handle()
        .map(|ctrl| {
            ctrl.lock()
                .expect("adaptive controller lock poisoned")
                .plan()
                .victims()
                .collect()
        })
        .unwrap_or_default()
}

/// Default repro-bundle directory: `$AFT_REPRO_DIR`, or `target/repro`.
pub fn repro_dir() -> PathBuf {
    std::env::var_os("AFT_REPRO_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/repro"))
}

/// Writes a violation repro bundle under `dir` and returns the bundle
/// path. The bundle holds everything needed to replay and inspect the
/// failing cell:
///
/// * `scenario.txt` — the scenario spec string, stack, seed, fingerprint
///   and the violations, one per line (replay with
///   `exp_trace --stack <stack> --scenario '<spec>' --seed <seed>`);
/// * `trace.jsonl` — the retained events, one JSON object per line;
/// * `trace.perfetto.json` — the same events as a Chrome/Perfetto
///   trace with party×session lanes.
pub fn write_repro_bundle(
    dir: &Path,
    kind: StackKind,
    scenario: &Scenario,
    seed: u64,
    report: &CellReport,
    events: &[TraceEvent],
) -> std::io::Result<PathBuf> {
    let bundle = dir.join(format!(
        "{}-seed{}-{:016x}",
        kind.label(),
        seed,
        report.fingerprint
    ));
    std::fs::create_dir_all(&bundle)?;
    let mut manifest = String::new();
    manifest.push_str(&format!("scenario: {scenario}\n"));
    manifest.push_str(&format!("stack: {}\n", kind.label()));
    manifest.push_str(&format!("seed: {seed}\n"));
    manifest.push_str(&format!("fingerprint: {:016x}\n", report.fingerprint));
    manifest.push_str(&format!(
        "sent: {} delivered: {} steps: {}\n",
        report.sent, report.delivered, report.steps
    ));
    manifest.push_str(&format!("events-retained: {}\n", events.len()));
    for v in &report.violations {
        manifest.push_str(&format!("violation: {v}\n"));
    }
    std::fs::write(bundle.join("scenario.txt"), manifest)?;
    std::fs::write(bundle.join("trace.jsonl"), aft_sim::trace::to_jsonl(events))?;
    std::fs::write(
        bundle.join("trace.perfetto.json"),
        aft_sim::trace::to_chrome_trace(events),
    )?;
    Ok(bundle)
}

const STEP_BUDGET: u64 = 2_000_000_000;

fn sid(kind: &'static str) -> SessionId {
    SessionId::root().child(SessionTag::new(kind, 0))
}

/// Appends the backend-independent bookkeeping violations (quiescence and
/// message conservation) and folds the metrics into the fingerprint.
fn check_run(
    violations: &mut Vec<String>,
    fp: &mut Fingerprint,
    stop: StopReason,
    metrics: &Metrics,
    phase: &str,
) {
    if stop != StopReason::Quiescent {
        violations.push(format!("{phase}: run did not quiesce ({stop:?})"));
    }
    if metrics.sent != metrics.delivered + metrics.dropped_shunned + metrics.dropped_crashed {
        violations.push(format!(
            "{phase}: message conservation broken (sent {} != delivered {} + shunned {} + crashed {})",
            metrics.sent, metrics.delivered, metrics.dropped_shunned, metrics.dropped_crashed
        ));
    }
    fp.write_str(phase);
    fp.write_metrics(metrics);
}

/// Unanimous-input binary BA: termination, agreement and validity must
/// hold for the honest parties under any ≤ t corruption plan.
pub fn run_ba_cell(scenario: &Scenario, seed: u64, registry: &AttackRegistry) -> CellReport {
    let mut rt = scenario.runtime(seed);
    run_ba_cell_on(rt.as_mut(), scenario, seed, registry, STEP_BUDGET)
}

fn run_ba_cell_on(
    rt: &mut dyn Runtime,
    scenario: &Scenario,
    seed: u64,
    registry: &AttackRegistry,
    budget: u64,
) -> CellReport {
    let session = sid("ba");
    let input = seed.is_multiple_of(2);
    let mut violations = Vec::new();
    let mut fp = Fingerprint::new();
    if let Err(e) = scenario.deploy_episode(rt, registry, "ba", &session, &[], |_, _| {
        Box::new(BinaryBa::new(input, Box::new(OracleCoin::new(seed))))
    }) {
        violations.push(format!("deploy: {e}"));
        return CellReport {
            violations,
            fingerprint: fp.finish(),
            sent: 0,
            delivered: 0,
            steps: 0,
        };
    }
    let report = rt.run(budget);
    check_run(&mut violations, &mut fp, report.stop, &report.metrics, "ba");

    // Adaptive corruptions happened *during* the run: parties the
    // controller struck are Byzantine now, so the paper's guarantees only
    // bind the parties that remain honest.
    let victims = adaptive_victims(rt);
    let honest: Vec<Option<bool>> = scenario
        .honest_parties()
        .filter(|p| !victims.contains(p))
        .map(|p| rt.output_as::<bool>(p, &session).copied())
        .collect();
    if honest.iter().any(|o| o.is_none()) {
        violations.push(format!("termination: honest outputs {honest:?}"));
    }
    let decided: Vec<bool> = honest.iter().flatten().copied().collect();
    if decided.windows(2).any(|w| w[0] != w[1]) {
        violations.push(format!("agreement: honest decisions {decided:?}"));
    }
    if decided.iter().any(|&d| d != input) {
        violations.push(format!(
            "validity: unanimous input {input} but decisions {decided:?}"
        ));
    }
    for p in (0..scenario.n).map(PartyId) {
        fp.write_str(&format!("{:?}", rt.output_as::<bool>(p, &session)));
    }
    CellReport {
        violations,
        fingerprint: fp.finish(),
        sent: report.metrics.sent,
        delivered: report.metrics.delivered,
        steps: report.metrics.steps,
    }
}

/// SVSS share→rec chain (dealer at party 0). With an honest dealer the
/// dealt secret must come back exactly; with a corrupt dealer every
/// binding divergence must be accompanied by shun events (Definition
/// 3.2's escape hatch). In between, the secrecy proxy: no single
/// non-dealer share evaluates to the dealt secret.
pub fn run_svss_cell(scenario: &Scenario, seed: u64, registry: &AttackRegistry) -> CellReport {
    let mut rt = scenario.runtime(seed);
    run_svss_cell_on(rt.as_mut(), scenario, seed, registry, STEP_BUDGET)
}

fn run_svss_cell_on(
    rt: &mut dyn Runtime,
    scenario: &Scenario,
    seed: u64,
    registry: &AttackRegistry,
    budget: u64,
) -> CellReport {
    let share_sid = sid("svss-share");
    let rec_sid = sid("svss-rec");
    let secret = Fp::new(seed.wrapping_mul(7).wrapping_add(3));
    let mut violations = Vec::new();
    let mut fp = Fingerprint::new();

    let deployed = scenario.deploy_episode(rt, registry, "svss-share", &share_sid, &[], |p, _| {
        if p == PartyId(0) {
            Box::new(SvssShare::dealer(PartyId(0), secret))
        } else {
            Box::new(SvssShare::party(PartyId(0)))
        }
    });
    if let Err(e) = deployed {
        violations.push(format!("deploy share: {e}"));
        return CellReport {
            violations,
            fingerprint: fp.finish(),
            sent: 0,
            delivered: 0,
            steps: 0,
        };
    }
    let share_report = rt.run(budget);
    check_run(
        &mut violations,
        &mut fp,
        share_report.stop,
        &share_report.metrics,
        "share",
    );

    // Victims are re-read after each run() — the adaptive adversary may
    // strike in either episode, and a dealer corrupted mid-share demotes
    // the cell to the faulty-dealer invariants from that point on.
    let victims = adaptive_victims(rt);
    let dealer_honest = !scenario.is_corrupt(PartyId(0)) && !victims.contains(&PartyId(0));

    let carries: Vec<Option<aft_sim::Payload>> = (0..scenario.n)
        .map(|p| rt.output(PartyId(p), &share_sid).cloned())
        .collect();
    // Secrecy proxy: no *single* party's share-phase view determines the
    // dealt secret — each σ_i = F(x_i, 0) and its column counterpart
    // F(0, x_i) must differ from F(0, 0). Full t-collusion secrecy is
    // information-theoretic and not directly checkable in one run, but a
    // degenerate dealer polynomial (degree-0 sharing, secret embedded in
    // every row) fails this for every party. A random degree-t bivariate
    // hits equality only with probability ~n/2⁶¹ per run, and the runs
    // are seed-deterministic, so the check never flakes.
    if dealer_honest {
        for (p, carry) in carries.iter().enumerate() {
            let Some(bundle) = carry.as_ref().and_then(|c| c.downcast_ref::<ShareBundle>()) else {
                continue;
            };
            if p == 0 {
                continue; // the dealer legitimately knows the secret
            }
            let leaks = bundle
                .row
                .as_ref()
                .is_some_and(|r| r.eval(Fp::ZERO) == secret)
                || bundle
                    .col
                    .as_ref()
                    .is_some_and(|c| c.eval(Fp::ZERO) == secret);
            if leaks {
                violations.push(format!(
                    "secrecy-proxy: party {p}'s single share evaluates to the dealt secret"
                ));
            }
        }
    }
    if dealer_honest {
        for p in scenario.honest_parties().filter(|p| !victims.contains(p)) {
            if carries[p.0].is_none() {
                violations.push(format!(
                    "share-liveness: honest party {} has no bundle under an honest dealer",
                    p.0
                ));
            }
        }
    }

    let deployed = scenario.deploy_episode(
        rt,
        registry,
        "svss-rec",
        &rec_sid,
        &carries,
        |_, carry| match carry.and_then(|c| c.downcast_ref::<ShareBundle>()) {
            Some(bundle) => Box::new(SvssRec::new(bundle.clone())),
            // No bundle (faulty dealer): the party cannot reconstruct.
            None => Box::new(SilentInstance),
        },
    );
    if let Err(e) = deployed {
        violations.push(format!("deploy rec: {e}"));
    } else {
        let rec_report = rt.run(budget);
        let total = rt.metrics();
        check_run(&mut violations, &mut fp, rec_report.stop, &total, "rec");

        let victims = adaptive_victims(rt);
        let dealer_honest = dealer_honest && !victims.contains(&PartyId(0));
        let outputs: Vec<(PartyId, Option<Fp>)> = scenario
            .honest_parties()
            .filter(|p| !victims.contains(p))
            .map(|p| (p, rt.output_as::<Fp>(p, &rec_sid).copied()))
            .collect();
        if dealer_honest {
            for (p, out) in &outputs {
                match out {
                    None => violations.push(format!(
                        "rec-termination: honest party {} never reconstructed",
                        p.0
                    )),
                    Some(v) if *v != secret => violations.push(format!(
                        "binding: honest party {} reconstructed {v:?}, dealt {secret:?}",
                        p.0
                    )),
                    Some(_) => {}
                }
            }
        } else {
            // Faulty dealer: binding may fail, but only alongside shuns.
            let values: Vec<Fp> = outputs.iter().filter_map(|(_, o)| *o).collect();
            let divergent = values.windows(2).any(|w| w[0] != w[1]);
            if divergent && total.shun_events == 0 {
                violations.push(format!(
                    "binding-without-shun: divergent reconstructions {values:?} with zero shun events"
                ));
            }
        }
        for p in (0..scenario.n).map(PartyId) {
            fp.write_str(&format!("{:?}", rt.output_as::<Fp>(p, &rec_sid)));
        }
    }
    let total = rt.metrics();
    CellReport {
        violations,
        fingerprint: fp.finish(),
        sent: total.sent,
        delivered: total.delivered,
        steps: total.steps,
    }
}

/// Common subset with self-announcing predicates: every honest party must
/// terminate with the *same* set of at least `n − t` valid party ids.
pub fn run_cs_cell(scenario: &Scenario, seed: u64, registry: &AttackRegistry) -> CellReport {
    let mut rt = scenario.runtime(seed);
    run_cs_cell_on(rt.as_mut(), scenario, seed, registry, STEP_BUDGET)
}

fn run_cs_cell_on(
    rt: &mut dyn Runtime,
    scenario: &Scenario,
    seed: u64,
    registry: &AttackRegistry,
    budget: u64,
) -> CellReport {
    let session = sid("cs");
    let k = scenario.n - scenario.t;
    let mut violations = Vec::new();
    let mut fp = Fingerprint::new();
    if let Err(e) = scenario.deploy_episode(rt, registry, "cs", &session, &[], |_, _| {
        Box::new(CommonSubsetInstance::new(k, CoinKind::Oracle(seed), true))
    }) {
        violations.push(format!("deploy: {e}"));
        return CellReport {
            violations,
            fingerprint: fp.finish(),
            sent: 0,
            delivered: 0,
            steps: 0,
        };
    }
    let report = rt.run(budget);
    check_run(&mut violations, &mut fp, report.stop, &report.metrics, "cs");

    let victims = adaptive_victims(rt);
    let outputs: Vec<(PartyId, Option<Vec<PartyId>>)> = scenario
        .honest_parties()
        .filter(|p| !victims.contains(p))
        .map(|p| (p, rt.output_as::<Vec<PartyId>>(p, &session).cloned()))
        .collect();
    for (p, out) in &outputs {
        match out {
            None => violations.push(format!("termination: honest party {} has no subset", p.0)),
            Some(s) => {
                if s.len() < k {
                    violations.push(format!(
                        "subset-size: party {} output {} members, need >= {k}",
                        p.0,
                        s.len()
                    ));
                }
                if s.iter().any(|m| m.0 >= scenario.n) {
                    violations.push(format!("subset-members: party {} output {s:?}", p.0));
                }
            }
        }
    }
    let sets: Vec<&Vec<PartyId>> = outputs.iter().filter_map(|(_, o)| o.as_ref()).collect();
    if sets.windows(2).any(|w| w[0] != w[1]) {
        violations.push(format!("consistency: honest subsets disagree: {sets:?}"));
    }
    for p in (0..scenario.n).map(PartyId) {
        fp.write_str(&format!("{:?}", rt.output_as::<Vec<PartyId>>(p, &session)));
    }
    CellReport {
        violations,
        fingerprint: fp.finish(),
        sent: report.metrics.sent,
        delivered: report.metrics.delivered,
        steps: report.metrics.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_every_protocol_attack() {
        let registry = standard_registry();
        for name in [
            "random-voter",
            "fixed-voter",
            "two-faced-dealer",
            "wrong-cross",
            "wrong-sigma",
            "equivocal-reveal",
            "silent-rec",
        ] {
            assert!(registry.contains(name), "{name}");
        }
    }

    #[test]
    fn standard_plans_resolve_in_the_standard_registry() {
        let registry = standard_registry();
        for kind in StackKind::all() {
            assert!(kind.standard_plans().len() >= 6, "{:?}", kind.label());
            for plan in kind.standard_plans() {
                let spec = if plan.is_empty() {
                    "n=4,t=1".to_string()
                } else {
                    format!("n=4,t=1,corrupt={plan}")
                };
                let scenario = Scenario::parse(&spec)
                    .unwrap_or_else(|| panic!("{:?} plan {plan:?} must parse", kind.label()));
                scenario
                    .validate_attacks(&registry)
                    .unwrap_or_else(|e| panic!("{:?} plan {plan:?}: {e}", kind.label()));
            }
        }
    }

    #[test]
    fn honest_cells_are_safe_on_every_stack() {
        let registry = standard_registry();
        let scenario = Scenario::parse("n=4,t=1,sched=random,rt=sim").unwrap();
        for kind in StackKind::all() {
            let report = run_cell(kind, &scenario, 7, &registry);
            assert!(
                report.violations.is_empty(),
                "{}: {:?}",
                kind.label(),
                report.violations
            );
            assert!(report.sent > 0);
        }
    }

    #[test]
    fn ba_cell_flags_a_rigged_run() {
        // A scenario the BA stack cannot survive: every party silent means
        // no honest termination — the invariant machinery must say so
        // (this guards the checker itself, not the protocol).
        let registry = standard_registry();
        let mut scenario = Scenario::parse("n=4,t=1,corrupt=silent@3,sched=fifo,rt=sim").unwrap();
        // Manually stretch the corruption budget past what parse allows,
        // to starve BA below its quorum.
        scenario.corruptions = (1..4)
            .map(|p| aft_sim::Corruption {
                party: PartyId(p),
                fault: aft_sim::FaultSpec::Silent,
            })
            .collect();
        let report = run_ba_cell(&scenario, 1, &registry);
        assert!(
            report.violations.iter().any(|v| v.contains("termination")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn equivocal_reveal_cell_draws_shuns_and_stays_bound() {
        let registry = standard_registry();
        let scenario =
            Scenario::parse("n=4,t=1,corrupt=equivocal-reveal@3,sched=random,rt=sim").unwrap();
        let report = run_svss_cell(&scenario, 5, &registry);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
