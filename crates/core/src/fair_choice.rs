//! `FairChoice(m)` — the paper's Algorithm 2: almost-fair selection of one
//! of `m` alternatives (Theorem 4.3).

use crate::coin_flip::{CoinFlip, CoinFlipOutput, CoinFlipParams};
use crate::config::CoinKind;
use aft_sim::{Context, Instance, PartyId, Payload, SessionTag};

/// Session tag kind of the sequential coin flips (`index = i`).
const FC_COIN_TAG: &str = "fc-coin";

/// How the per-bit coins of FairChoice are parameterised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FairChoiceParams {
    /// The paper's prescription: each of the `l` coins is
    /// `CoinFlip(ε)` with `ε = 1/(100 · m · log₂ m)` iterations per its
    /// own paper-exact formula. Astronomically expensive but exactly
    /// Algorithm 2 (used by the paper-exact experiment mode at tiny `n`).
    Paper,
    /// Every coin runs a fixed number of SVSS iterations — the scaled mode
    /// (bias per coin still measured and reported by experiments).
    FixedK {
        /// SVSS iterations per coin flip.
        k: usize,
    },
}

/// The paper's parameters for `FairChoice(m)`: the number of coin bits `l`
/// (with `N = 2^l`, the smallest power of two with `4m² ≥ N ≥ 2m²`) and
/// the per-coin bias target `ε = 1/(100·m·log₂ m)`.
///
/// # Panics
///
/// Panics if `m < 3` (the protocol requires `m ≥ 3`).
///
/// ```
/// let (l, eps) = aft_core::fair_choice_parameters(3);
/// assert_eq!(l, 5); // N = 32, 2m² = 18 ≤ 32 ≤ 36 = 4m²
/// assert!((eps - 1.0 / (100.0 * 3.0 * 3f64.log2())).abs() < 1e-12);
/// ```
pub fn fair_choice_parameters(m: usize) -> (u32, f64) {
    assert!(m >= 3, "FairChoice requires m >= 3");
    let target = 2 * m * m;
    let mut l = 0u32;
    while (1usize << l) < target {
        l += 1;
    }
    debug_assert!((1usize << l) <= 4 * m * m, "N must be at most 4m^2");
    let eps = 1.0 / (100.0 * m as f64 * (m as f64).log2());
    (l, eps)
}

/// One party's `FairChoice(m)` instance (Algorithm 2).
///
/// Runs `l` **sequential** strong common coins, assembles the bits into a
/// number `r ∈ [0, 2^l)` (first coin = most significant bit), and outputs
/// `r mod m` as a `usize`.
///
/// Properties (Theorem 4.3, verified by tests/experiments):
/// * Correctness — all honest parties output the same index (each coin is
///   agreed).
/// * Validity — for any `G ⊆ {0..m-1}` with `|G| > m/2`, the output lands
///   in `G` with probability > ½: per-coin bias is small enough that every
///   residue class keeps nearly `1/m` mass.
pub struct FairChoice {
    m: usize,
    l: u32,
    params: FairChoiceParams,
    coin: CoinKind,
    bits: Vec<bool>,
    started: u32,
    done: bool,
}

impl FairChoice {
    /// Creates the instance choosing among `m ≥ 3` alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `m < 3`.
    pub fn new(m: usize, params: FairChoiceParams, coin: CoinKind) -> Self {
        let (l, _) = fair_choice_parameters(m);
        FairChoice {
            m,
            l,
            params,
            coin,
            bits: Vec::new(),
            started: 0,
            done: false,
        }
    }

    /// The number of coin flips this instance will run.
    pub fn flips(&self) -> u32 {
        self.l
    }

    fn coin_params(&self) -> CoinFlipParams {
        match self.params {
            FairChoiceParams::Paper => {
                let (_, eps) = fair_choice_parameters(self.m);
                CoinFlipParams::PaperExact { epsilon: eps }
            }
            FairChoiceParams::FixedK { k } => CoinFlipParams::FixedK { k },
        }
    }

    fn start_next_coin(&mut self, ctx: &mut Context<'_>) {
        let i = self.started;
        self.started += 1;
        ctx.spawn(
            SessionTag::new(FC_COIN_TAG, i as u64),
            Box::new(CoinFlip::new(self.coin_params(), self.coin)),
        );
    }
}

impl Instance for FairChoice {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.start_next_coin(ctx);
    }

    fn on_message(&mut self, _from: PartyId, _payload: &Payload, _ctx: &mut Context<'_>) {}

    fn on_child_output(&mut self, child: &SessionTag, output: &Payload, ctx: &mut Context<'_>) {
        if child.kind != FC_COIN_TAG || self.done {
            return;
        }
        let Some(out) = output.downcast_ref::<CoinFlipOutput>() else {
            return;
        };
        if child.index != self.bits.len() as u64 {
            return; // out-of-order duplicate
        }
        self.bits.push(out.value);
        if self.bits.len() < self.l as usize {
            self.start_next_coin(ctx);
        } else {
            // r = (b_1 b_2 ... b_l)_2, b_1 most significant.
            let r = self
                .bits
                .iter()
                .fold(0usize, |acc, &b| (acc << 1) | usize::from(b));
            self.done = true;
            ctx.output(r % self.m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_match_paper_constraints() {
        for m in 3..40usize {
            let (l, eps) = fair_choice_parameters(m);
            let n_val = 1usize << l;
            assert!(n_val >= 2 * m * m, "m={m}: N={n_val} < 2m^2");
            assert!(n_val <= 4 * m * m, "m={m}: N={n_val} > 4m^2");
            // Smallest such power of two.
            assert!((1usize << (l - 1)) < 2 * m * m);
            assert!(eps > 0.0 && eps < 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "m >= 3")]
    fn m_below_three_rejected() {
        let _ = fair_choice_parameters(2);
    }

    #[test]
    fn flips_equals_l() {
        let fc = FairChoice::new(5, FairChoiceParams::FixedK { k: 1 }, CoinKind::Oracle(0));
        let (l, _) = fair_choice_parameters(5);
        assert_eq!(fc.flips(), l);
    }
}
