//! Property tests for the paper's Algorithms 1–4: CommonSubset,
//! CoinFlip, FairChoice, FBA.

use aft_core::{
    CoinFlip, CoinFlipOutput, CoinFlipParams, CoinKind, CommonSubsetInstance, FairChoice,
    FairChoiceParams, Fba,
};
use aft_sim::{
    scheduler_by_name, Instance, NetConfig, PartyId, SessionId, SessionTag, SilentInstance,
    SimNetwork, StopReason,
};

fn sid(kind: &'static str) -> SessionId {
    SessionId::root().child(SessionTag::new(kind, 0))
}

fn run(
    n: usize,
    t: usize,
    seed: u64,
    sched: &str,
    kind: &'static str,
    mk: impl Fn(usize) -> Box<dyn Instance>,
) -> SimNetwork {
    let mut net = SimNetwork::new(
        NetConfig::new(n, t, seed),
        scheduler_by_name(sched).unwrap(),
    );
    for p in 0..n {
        net.spawn(PartyId(p), sid(kind), mk(p));
    }
    let report = net.run(200_000_000);
    assert_eq!(
        report.stop,
        StopReason::Quiescent,
        "{kind} must reach quiescence"
    );
    net
}

// ---------------------------------------------------------------- subset

#[test]
fn common_subset_agreement_and_size() {
    for (n, t) in [(4usize, 1usize), (7, 2)] {
        for seed in 0..5u64 {
            let net = run(n, t, seed, "random", "cs", |_| {
                Box::new(CommonSubsetInstance::new(
                    n - t,
                    CoinKind::Oracle(seed),
                    true,
                ))
            });
            let sets: Vec<Vec<PartyId>> = (0..n)
                .map(|p| {
                    net.output_as::<Vec<PartyId>>(PartyId(p), &sid("cs"))
                        .unwrap_or_else(|| panic!("n={n} seed={seed} p={p} no output"))
                        .clone()
                })
                .collect();
            for s in &sets[1..] {
                assert_eq!(s, &sets[0], "n={n} seed={seed}: disagreement");
            }
            assert!(sets[0].len() >= n - t, "n={n} seed={seed}: |S| too small");
        }
    }
}

#[test]
fn common_subset_excludes_only_possible_with_silent_parties() {
    // With one silent party, the subset still reaches n - t members and
    // every member really announced (its predicate was set at an honest
    // party). The silent party may or may not be excluded depending on
    // timing, but an honest never-announcing party can never be included:
    // here P3 never announces (but does participate in the BAs).
    let (n, t) = (4usize, 1usize);
    for seed in 0..5u64 {
        let net = run(n, t, seed, "random", "cs", |p| {
            Box::new(CommonSubsetInstance::new(
                n - t,
                CoinKind::Oracle(seed),
                p != 3, // P3 participates but never announces itself
            ))
        });
        let s = net
            .output_as::<Vec<PartyId>>(PartyId(0), &sid("cs"))
            .expect("terminates")
            .clone();
        assert!(s.len() >= n - t);
        assert!(
            !s.contains(&PartyId(3)),
            "seed={seed}: P3 never announced yet is in S={s:?}"
        );
    }
}

#[test]
fn common_subset_tolerates_silent_party() {
    let (n, t) = (4usize, 1usize);
    for seed in 0..5u64 {
        let net = run(n, t, seed, "random", "cs", |p| {
            if p == 2 {
                Box::new(SilentInstance)
            } else {
                Box::new(CommonSubsetInstance::new(
                    n - t,
                    CoinKind::Oracle(seed),
                    true,
                ))
            }
        });
        let sets: Vec<Vec<PartyId>> = [0usize, 1, 3]
            .iter()
            .map(|&p| {
                net.output_as::<Vec<PartyId>>(PartyId(p), &sid("cs"))
                    .unwrap_or_else(|| panic!("seed={seed} p={p} no output"))
                    .clone()
            })
            .collect();
        for s in &sets[1..] {
            assert_eq!(s, &sets[0]);
        }
        assert!(sets[0].len() >= n - t);
        assert!(!sets[0].contains(&PartyId(2)), "silent P2 cannot be in S");
    }
}

// ---------------------------------------------------------------- coin

fn flip_coins(
    n: usize,
    t: usize,
    seed: u64,
    k: usize,
    coin: CoinKind,
    sched: &str,
) -> Vec<CoinFlipOutput> {
    let net = run(n, t, seed, sched, "coin", |_| {
        Box::new(CoinFlip::new(CoinFlipParams::FixedK { k }, coin))
    });
    (0..n)
        .map(|p| {
            *net.output_as::<CoinFlipOutput>(PartyId(p), &sid("coin"))
                .unwrap_or_else(|| panic!("seed={seed} p={p}: coin did not terminate"))
        })
        .collect()
}

#[test]
fn coin_flip_strong_agreement() {
    for seed in 0..6u64 {
        let outs = flip_coins(4, 1, seed, 2, CoinKind::Oracle(seed), "random");
        assert!(
            outs.windows(2).all(|w| w[0].value == w[1].value),
            "seed={seed}: {outs:?}"
        );
        assert_eq!(outs[0].iterations, 2);
    }
}

#[test]
fn coin_flip_with_weak_shared_inner_coins() {
    // Full information-theoretic stack (no oracle anywhere).
    let outs = flip_coins(4, 1, 3, 1, CoinKind::WeakShared, "random");
    assert!(
        outs.windows(2).all(|w| w[0].value == w[1].value),
        "{outs:?}"
    );
}

#[test]
fn coin_flip_with_silent_party() {
    for seed in 0..3u64 {
        let net = run(4, 1, seed, "random", "coin", |p| {
            if p == 1 {
                Box::new(SilentInstance)
            } else {
                Box::new(CoinFlip::new(
                    CoinFlipParams::FixedK { k: 2 },
                    CoinKind::Oracle(seed),
                ))
            }
        });
        let outs: Vec<CoinFlipOutput> = [0usize, 2, 3]
            .iter()
            .map(|&p| {
                *net.output_as::<CoinFlipOutput>(PartyId(p), &sid("coin"))
                    .unwrap_or_else(|| panic!("seed={seed} p={p}"))
            })
            .collect();
        assert!(
            outs.windows(2).all(|w| w[0].value == w[1].value),
            "seed={seed}"
        );
    }
}

#[test]
fn coin_flip_not_constant_across_seeds() {
    // The coin must actually vary with the randomness (bias sanity).
    let mut values = std::collections::HashSet::new();
    for seed in 0..8u64 {
        let outs = flip_coins(4, 1, seed, 1, CoinKind::Oracle(seed * 17 + 3), "fifo");
        values.insert(outs[0].value);
    }
    assert_eq!(values.len(), 2, "coin stuck on one value across 8 seeds");
}

#[test]
fn paper_exact_iteration_formula() {
    // k = 4 * ceil((e / (eps*pi))^2 * n^4)
    let k = CoinFlipParams::PaperExact { epsilon: 0.25 }.iterations(4);
    let c = std::f64::consts::E / (0.25 * std::f64::consts::PI);
    let expect = 4 * ((c * c * 256.0).ceil() as usize);
    assert_eq!(k, expect);
    assert!(k > 1000, "paper-exact k is deliberately enormous: {k}");
    assert_eq!(CoinFlipParams::FixedK { k: 7 }.iterations(10), 7);
}

#[test]
#[should_panic(expected = "epsilon must be in (0, 1/2)")]
fn paper_exact_rejects_bad_epsilon() {
    let _ = CoinFlipParams::PaperExact { epsilon: 0.7 }.iterations(4);
}

// ---------------------------------------------------------------- choice

#[test]
fn fair_choice_agreement_and_range() {
    for seed in 0..3u64 {
        let m = 3usize;
        let net = run(4, 1, seed, "random", "fc", |_| {
            Box::new(FairChoice::new(
                m,
                FairChoiceParams::FixedK { k: 1 },
                CoinKind::Oracle(seed),
            ))
        });
        let outs: Vec<usize> = (0..4)
            .map(|p| {
                *net.output_as::<usize>(PartyId(p), &sid("fc"))
                    .unwrap_or_else(|| panic!("seed={seed} p={p}"))
            })
            .collect();
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "seed={seed}: {outs:?}"
        );
        assert!(outs[0] < m);
    }
}

// ---------------------------------------------------------------- fba

fn run_fba(
    n: usize,
    t: usize,
    seed: u64,
    sched: &str,
    inputs: &[&str],
    byz: &[usize],
) -> SimNetwork {
    let inputs: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
    let byz = byz.to_vec();
    run(n, t, seed, sched, "fba", move |p| {
        if byz.contains(&p) {
            Box::new(SilentInstance)
        } else {
            Box::new(Fba::new(
                inputs[p].clone(),
                FairChoiceParams::FixedK { k: 1 },
                CoinKind::Oracle(seed),
            ))
        }
    })
}

#[test]
fn fba_validity_unanimous() {
    for seed in 0..3u64 {
        let net = run_fba(4, 1, seed, "random", &["v", "v", "v", "v"], &[]);
        for p in 0..4 {
            assert_eq!(
                net.output_as::<String>(PartyId(p), &sid("fba"))
                    .map(String::as_str),
                Some("v"),
                "seed={seed} p={p}"
            );
        }
    }
}

#[test]
fn fba_majority_value_wins() {
    // Three of four honest share "a": the subset of size >= 3 must contain
    // at least two "a" holders... majority is over the subset, so with all
    // four honest and 3x"a", any S of size 3 has >= 2 "a" = strict majority.
    for seed in 0..3u64 {
        let net = run_fba(4, 1, seed, "random", &["a", "a", "a", "b"], &[]);
        for p in 0..4 {
            assert_eq!(
                net.output_as::<String>(PartyId(p), &sid("fba"))
                    .map(String::as_str),
                Some("a"),
                "seed={seed} p={p}"
            );
        }
    }
}

#[test]
fn fba_agreement_all_distinct_inputs() {
    for seed in 0..4u64 {
        let net = run_fba(4, 1, seed, "random", &["w", "x", "y", "z"], &[]);
        let outs: Vec<String> = (0..4)
            .map(|p| {
                net.output_as::<String>(PartyId(p), &sid("fba"))
                    .unwrap_or_else(|| panic!("seed={seed} p={p}"))
                    .clone()
            })
            .collect();
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "seed={seed}: {outs:?}"
        );
        // Output is some party's input.
        assert!(
            ["w", "x", "y", "z"].contains(&outs[0].as_str()),
            "seed={seed}"
        );
    }
}

#[test]
fn fba_with_silent_byzantine() {
    for seed in 0..3u64 {
        let net = run_fba(4, 1, seed, "random", &["p", "q", "r", "ignored"], &[3]);
        let outs: Vec<String> = (0..3)
            .map(|p| {
                net.output_as::<String>(PartyId(p), &sid("fba"))
                    .unwrap_or_else(|| panic!("seed={seed} p={p}"))
                    .clone()
            })
            .collect();
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "seed={seed}: {outs:?}"
        );
        assert!(["p", "q", "r"].contains(&outs[0].as_str()));
    }
}

#[test]
fn fba_deterministic_replay() {
    let go = |seed: u64| {
        let net = run_fba(4, 1, seed, "random", &["w", "x", "y", "z"], &[]);
        net.output_as::<String>(PartyId(0), &sid("fba")).cloned()
    };
    assert_eq!(go(5), go(5));
}

// ---------------------------------------------------------------- beacon

#[test]
fn beacon_epochs_agree_across_parties() {
    use aft_core::{Beacon, BeaconOutput};
    for seed in 0..3u64 {
        let net = run(4, 1, seed, "random", "beacon", |_| {
            Box::new(Beacon::new(
                4,
                CoinFlipParams::FixedK { k: 1 },
                CoinKind::Oracle(seed ^ 0xBEAC),
            ))
        });
        let outs: Vec<BeaconOutput> = (0..4)
            .map(|p| {
                net.output_as::<BeaconOutput>(PartyId(p), &sid("beacon"))
                    .unwrap_or_else(|| panic!("seed={seed} p={p}"))
                    .clone()
            })
            .collect();
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "seed={seed}");
        assert_eq!(outs[0].bits.len(), 4);
    }
}

#[test]
fn beacon_tolerates_crash_mid_stream() {
    use aft_core::{Beacon, BeaconOutput};
    let mut net = SimNetwork::new(
        NetConfig::new(4, 1, 9),
        aft_sim::scheduler_by_name("random").unwrap(),
    );
    for p in 0..4 {
        net.spawn(
            PartyId(p),
            sid("beacon"),
            Box::new(Beacon::new(
                3,
                CoinFlipParams::FixedK { k: 1 },
                CoinKind::Oracle(0xFEED),
            )),
        );
    }
    net.crash_at(PartyId(2), 2_000);
    let report = net.run(1_000_000_000);
    assert_eq!(report.stop, StopReason::Quiescent);
    let outs: Vec<BeaconOutput> = [0usize, 1, 3]
        .iter()
        .map(|&p| {
            net.output_as::<BeaconOutput>(PartyId(p), &sid("beacon"))
                .expect("honest parties finish the stream")
                .clone()
        })
        .collect();
    assert!(outs.windows(2).all(|w| w[0] == w[1]));
}

/// The identical CoinFlip deployment driven through the `Runtime` trait on
/// every backend: strong-coin agreement holds over real threads too.
#[test]
fn coin_flip_through_runtime_trait_on_every_backend() {
    use aft_sim::{runtime_by_name, Runtime, RuntimeExt};
    for backend in ["sim", "threaded"] {
        let mut rt: Box<dyn Runtime> = runtime_by_name(backend, NetConfig::new(4, 1, 37)).unwrap();
        for p in 0..4 {
            rt.spawn(
                PartyId(p),
                sid("coin"),
                Box::new(CoinFlip::new(
                    CoinFlipParams::FixedK { k: 1 },
                    CoinKind::Oracle(4),
                )),
            );
        }
        let report = rt.run(1_000_000_000);
        assert_eq!(report.stop, StopReason::Quiescent, "{backend}");
        let outs: Vec<bool> = (0..4)
            .map(|p| {
                rt.output_as::<CoinFlipOutput>(PartyId(p), &sid("coin"))
                    .expect("terminates")
                    .value
            })
            .collect();
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "{backend}: {outs:?}");
    }
}
