//! Property-based tests of the paper's algorithms: agreement invariants
//! of CoinFlip / FairChoice / FBA / CommonSubset over randomized
//! configurations.

use aft_core::{
    CoinFlip, CoinFlipOutput, CoinFlipParams, CoinKind, CommonSubsetInstance, FairChoice,
    FairChoiceParams, Fba,
};
use aft_sim::{
    scheduler_by_name, Instance, NetConfig, PartyId, SessionId, SessionTag, SilentInstance,
    SimNetwork, StopReason,
};
use proptest::prelude::*;

fn sid() -> SessionId {
    SessionId::root().child(SessionTag::new("p", 0))
}

fn sched_name(i: usize) -> &'static str {
    ["fifo", "random", "lifo", "window4"][i % 4]
}

fn run(
    n: usize,
    t: usize,
    seed: u64,
    sched: usize,
    byz: &[usize],
    mk: impl Fn(usize) -> Box<dyn Instance>,
) -> SimNetwork {
    let mut net = SimNetwork::new(
        NetConfig::new(n, t, seed),
        scheduler_by_name(sched_name(sched)).unwrap(),
    );
    for p in 0..n {
        let inst: Box<dyn Instance> = if byz.contains(&p) {
            Box::new(SilentInstance)
        } else {
            mk(p)
        };
        net.spawn(PartyId(p), sid(), inst);
    }
    let report = net.run(2_000_000_000);
    assert_eq!(report.stop, StopReason::Quiescent);
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CoinFlip: strong agreement for any seed/scheduler/k and any single
    /// crashed party.
    #[test]
    fn coin_flip_agreement_invariant(
        seed in any::<u64>(),
        sched in 0usize..4,
        k in 1usize..4,
        byz in 0usize..5,
    ) {
        let (n, t) = (4usize, 1usize);
        let byz: Vec<usize> = if byz < n { vec![byz] } else { vec![] };
        let net = run(n, t, seed, sched, &byz, |_| {
            Box::new(CoinFlip::new(
                CoinFlipParams::FixedK { k },
                CoinKind::Oracle(seed ^ 0xC0),
            ))
        });
        let outs: Vec<bool> = (0..n)
            .filter(|p| !byz.contains(p))
            .map(|p| {
                net.output_as::<CoinFlipOutput>(PartyId(p), &sid())
                    .expect("terminates")
                    .value
            })
            .collect();
        prop_assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
    }

    /// FairChoice: agreed output within range for any m.
    #[test]
    fn fair_choice_invariants(
        seed in any::<u64>(),
        m in 3usize..7,
        sched in 0usize..4,
    ) {
        let (n, t) = (4usize, 1usize);
        let net = run(n, t, seed, sched, &[], |_| {
            Box::new(FairChoice::new(
                m,
                FairChoiceParams::FixedK { k: 1 },
                CoinKind::Oracle(seed ^ 0xFC),
            ))
        });
        let outs: Vec<usize> = (0..n)
            .map(|p| *net.output_as::<usize>(PartyId(p), &sid()).expect("terminates"))
            .collect();
        prop_assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
        prop_assert!(outs[0] < m);
    }

    /// FBA: agreement, and the output is some honest input (with only
    /// crash adversaries every delivered value is an honest input).
    #[test]
    fn fba_agreement_and_anchored_output(
        seed in any::<u64>(),
        inputs in proptest::collection::vec(0u32..5, 4..=4),
        sched in 0usize..4,
        byz in 0usize..5,
    ) {
        let (n, t) = (4usize, 1usize);
        let byz: Vec<usize> = if byz < n { vec![byz] } else { vec![] };
        let inputs_c = inputs.clone();
        let net = run(n, t, seed, sched, &byz, move |p| {
            Box::new(Fba::new(
                inputs_c[p],
                FairChoiceParams::FixedK { k: 1 },
                CoinKind::Oracle(seed ^ 0xFBA),
            ))
        });
        let honest: Vec<usize> = (0..n).filter(|p| !byz.contains(p)).collect();
        let outs: Vec<u32> = honest
            .iter()
            .map(|&p| *net.output_as::<u32>(PartyId(p), &sid()).expect("terminates"))
            .collect();
        prop_assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
        let honest_inputs: Vec<u32> = honest.iter().map(|&p| inputs[p]).collect();
        prop_assert!(honest_inputs.contains(&outs[0]), "output not an honest input");
        // Unanimity ⇒ that value.
        if honest_inputs.windows(2).all(|w| w[0] == w[1]) {
            prop_assert_eq!(outs[0], honest_inputs[0]);
        }
    }

    /// CommonSubset: common set, size ≥ n − t, silent parties excluded.
    #[test]
    fn common_subset_invariants(
        seed in any::<u64>(),
        sched in 0usize..4,
        byz in 0usize..5,
    ) {
        let (n, t) = (4usize, 1usize);
        let byz: Vec<usize> = if byz < n { vec![byz] } else { vec![] };
        let net = run(n, t, seed, sched, &byz, |_| {
            Box::new(CommonSubsetInstance::new(n - t, CoinKind::Oracle(seed ^ 0xC5), true))
        });
        let honest: Vec<usize> = (0..n).filter(|p| !byz.contains(p)).collect();
        let sets: Vec<Vec<PartyId>> = honest
            .iter()
            .map(|&p| {
                net.output_as::<Vec<PartyId>>(PartyId(p), &sid())
                    .expect("terminates")
                    .clone()
            })
            .collect();
        for s in &sets[1..] {
            prop_assert_eq!(s, &sets[0]);
        }
        prop_assert!(sets[0].len() >= n - t);
        for b in &byz {
            prop_assert!(!sets[0].contains(&PartyId(*b)), "silent member in S");
        }
    }
}

/// Random adversarial scenarios on the BA stack: any ≤ t corruption plan
/// drawn from the generic behaviours and the registered BA attacks, any
/// scheduler family, any deterministic backend — safety must hold. (The
/// scenario string of a failing case is printed by the harness, giving a
/// replayable minimal-ish counterexample for free.)
mod scenario_safety {
    use aft_core::scenarios::{run_ba_cell, standard_registry};
    use aft_sim::{Corruption, FaultSpec, PartyId, Scenario, ALL_SCHEDULERS};
    use proptest::collection::vec;
    use proptest::prelude::*;

    fn ba_fault_from(sel: u64) -> FaultSpec {
        match sel % 8 {
            0 => FaultSpec::Silent,
            1 => FaultSpec::Crash,
            2 => FaultSpec::MuteAfter(sel / 8 % 16),
            3 => FaultSpec::Garbage(1 + sel / 8 % 48),
            4 => FaultSpec::Equivocate(1 + sel / 8 % 12),
            5 => FaultSpec::Attack {
                name: "random-voter".into(),
                args: String::new(),
            },
            6 => FaultSpec::Attack {
                name: "fixed-voter".into(),
                args: "true".into(),
            },
            _ => FaultSpec::Attack {
                name: "fixed-voter".into(),
                args: "false:3".into(),
            },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn random_scenarios_preserve_ba_safety(
            seed in any::<u64>(),
            n in 4usize..=7,
            sched in 0usize..16,
            rt in 0usize..16,
            corrupt in vec(any::<u64>(), 0..=2),
        ) {
            let t = (n - 1) / 3;
            let mut parties: Vec<usize> = Vec::new();
            for sel in corrupt.iter().take(t) {
                let available: Vec<usize> = (0..n).filter(|p| !parties.contains(p)).collect();
                parties.push(available[(sel % available.len() as u64) as usize]);
            }
            parties.sort_unstable();
            let corruptions: Vec<Corruption> = parties
                .iter()
                .zip(&corrupt)
                .map(|(&party, sel)| Corruption {
                    party: PartyId(party),
                    fault: ba_fault_from(sel >> 8),
                })
                .collect();
            let rts = ["sim", "sharded:2", "sharded:3"];
            let scenario = Scenario {
                n,
                t,
                corruptions,
                adaptive: None,
                sched: ALL_SCHEDULERS[sched % ALL_SCHEDULERS.len()].example.to_string(),
                rt: rts[rt % rts.len()].to_string(),
            };
            // (a) the spec round-trips through its string form;
            let spec = scenario.to_string();
            let parsed = Scenario::parse(&spec);
            prop_assert_eq!(parsed.as_ref(), Some(&scenario), "{}", spec);
            // (b) safety invariants hold when the parsed spec runs.
            let report = run_ba_cell(&parsed.unwrap(), seed, &standard_registry());
            prop_assert!(
                report.violations.is_empty(),
                "scenario {} seed {}: {:?}",
                spec,
                seed,
                report.violations
            );
        }
    }
}

/// Random *adaptive* adversarial scenarios on the BA stack: any mix of a
/// static corruption and a registered adaptive policy, any scheduler and
/// deterministic backend, at n = 4..7 — safety must hold for the parties
/// that remain honest, and the registry's victim-cap accounting must
/// never let the adversary corrupt more than `t` distinct parties
/// (static seeds included).
mod adaptive_safety {
    use aft_core::scenarios::{run_cell_instrumented, standard_registry, StackKind};
    use aft_sim::{AdaptiveSpec, Corruption, FaultSpec, Scenario, TraceMode, ALL_SCHEDULERS};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn random_adaptive_scenarios_preserve_ba_safety_and_victim_cap(
            seed in any::<u64>(),
            n in 4usize..=7,
            sched in 0usize..16,
            rt in 0usize..16,
            attack in 0usize..16,
            with_static in any::<bool>(),
            static_party in 0usize..7,
        ) {
            let t = (n - 1) / 3;
            // The quiescing adaptive policies (the storm pin is exercised
            // by the shrinker properties below, where non-quiescence is
            // the point).
            let pin_mute = format!("mute:{}", attack % n);
            let pin_equiv = format!("equivocate:{}", (attack / 4) % n);
            let policies: [(&str, &str); 4] = [
                ("coin-favorite", ""),
                ("coin-favorite", "equivocate"),
                ("pin", &pin_mute),
                ("pin", &pin_equiv),
            ];
            let (name, args) = policies[attack % policies.len()];
            let corruptions = if with_static {
                vec![Corruption {
                    party: aft_sim::PartyId(static_party % n),
                    fault: FaultSpec::Silent,
                }]
            } else {
                Vec::new()
            };
            let rts = ["sim", "sharded:2", "sharded:4", "wire"];
            let scenario = Scenario {
                n,
                t,
                corruptions,
                adaptive: Some(AdaptiveSpec {
                    name: name.to_string(),
                    args: args.to_string(),
                }),
                sched: ALL_SCHEDULERS[sched % ALL_SCHEDULERS.len()].example.to_string(),
                rt: rts[rt % rts.len()].to_string(),
            };
            // (a) adaptive specs round-trip through their string form;
            let spec = scenario.to_string();
            prop_assert_eq!(Scenario::parse(&spec).as_ref(), Some(&scenario), "{}", spec);
            // (b) safety holds for the remaining honest parties;
            let registry = standard_registry();
            let run = run_cell_instrumented(
                StackKind::Ba, &scenario, seed, &registry, u64::MAX, TraceMode::Off,
            );
            prop_assert!(
                run.report.violations.is_empty(),
                "scenario {} seed {}: {:?}",
                spec, seed, run.report.violations
            );
            // (c) the t-cap: never more than t distinct corrupted parties,
            // counting the static seeds against the same budget.
            prop_assert!(
                run.victims.len() <= t,
                "scenario {} seed {}: victims {:?} exceed t={}",
                spec, seed, run.victims, t
            );
            for c in &scenario.corruptions {
                prop_assert!(
                    run.victims.contains(&c.party),
                    "static corruption {:?} missing from the victim accounting", c.party
                );
            }
        }
    }
}

/// Shrinker contract on synthetic seeded violations: plant the
/// non-quiescing adaptive storm, dress it up with random decoys (a
/// static corruption, an exotic scheduler and backend), and require the
/// shrinker's output to (a) re-parse, (b) still violate with the *same*
/// violation signature at the same step budget, and (c) never exceed the
/// input's token count.
mod shrinker_props {
    use aft_core::scenarios::{run_cell_budgeted, StackKind};
    use aft_core::search::{shrink, spec_tokens, violation_signature};
    use aft_sim::Scenario;
    use proptest::prelude::*;

    const BUDGET: u64 = 60_000;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn shrinker_output_reparses_still_violates_and_never_grows(
            seed in 0u64..32,
            decoy in 0usize..5,
            target in 0usize..7,
            sched in 0usize..4,
        ) {
            let decoys = ["silent@5", "crash@1", "garbage:9@5", "mute-after:6@2", "equivocate:4@1"];
            let scheds = ["random", "lifo", "block:8", "net:lat=2..6"];
            // The storm target must be an honest party: a statically
            // corrupted party runs the static fault's instance and is
            // never wrapped in the adaptive shell, so pinning it would
            // (correctly) not storm at all.
            let storm_target = [0usize, 3, 4, 6][target % 4];
            let spec = format!(
                "n=7,t=2,corrupt={};adaptive:pin:storm:{storm_target}@*,sched={},rt=sharded:2",
                decoys[decoy], scheds[sched],
            );
            prop_assert!(Scenario::parse(&spec).is_some(), "{}", spec);
            let registry = aft_core::scenarios::standard_registry();
            let shrunk = shrink(StackKind::Ba, &spec, seed, &registry, BUDGET)
                .expect("the planted storm always violates");
            // (a) re-parses;
            let parsed = Scenario::parse(&shrunk.entry.spec);
            prop_assert!(parsed.is_some(), "shrunk spec must re-parse: {}", shrunk.entry.spec);
            // (c) no larger than the input;
            prop_assert!(
                spec_tokens(&shrunk.entry.spec) <= spec_tokens(&spec),
                "{} grew to {}", spec, shrunk.entry.spec
            );
            // (b) replays to a violation with the identical signature.
            let replay = run_cell_budgeted(
                StackKind::Ba, &parsed.unwrap(), shrunk.entry.seed, &registry, BUDGET,
            );
            prop_assert!(!replay.violations.is_empty(), "{}", shrunk.entry.spec);
            prop_assert_eq!(
                violation_signature(StackKind::Ba, &replay),
                shrunk.signature,
                "{} changed its violation signature", shrunk.entry.spec
            );
            prop_assert_eq!(replay.fingerprint, shrunk.report.fingerprint);
        }
    }
}

/// Registry-wide decoder fuzz over the *standard* codec registry: every
/// kind any protocol crate registers must decode arbitrary bodies
/// without panicking, and whatever decodes carries the declared kind's
/// registered name — never another kind's.
mod codec_props {
    use aft_core::scenarios::register_standard_codecs;
    use aft_sim::wire::{global_registry, parse_frame};
    use proptest::collection::vec;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn every_registered_decoder_is_total_and_kind_honest(
            kind_sel in any::<usize>(),
            body in vec(any::<u8>(), 0..64),
        ) {
            register_standard_codecs();
            let registry = global_registry();
            let kinds: Vec<(u16, &'static str)> = registry.kinds().collect();
            prop_assert!(kinds.len() >= 20, "standard registry is populated");
            let (kind, name) = kinds[kind_sel % kinds.len()];
            // A syntactically valid frame with an arbitrary body, aimed
            // at this exact registered decoder.
            let mut frame = kind.to_le_bytes().to_vec();
            frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
            frame.extend_from_slice(&body);
            if let Some((got_kind, payload)) = registry.decode_frame(&frame) {
                prop_assert_eq!(got_kind, kind);
                prop_assert_eq!(payload.type_name(), name, "never a different kind");
            }
        }

        #[test]
        fn registry_decode_total_on_arbitrary_bytes(bytes in vec(any::<u8>(), 0..64)) {
            register_standard_codecs();
            let registry = global_registry();
            if let Some((kind, payload)) = registry.decode_frame(&bytes) {
                prop_assert_eq!(parse_frame(&bytes).unwrap().0, kind);
                prop_assert_eq!(Some(payload.type_name()), registry.kind_name(kind));
            }
        }
    }
}
