//! A distributed randomness beacon from repeated strong common coins.
//!
//! Each epoch the parties run `CoinFlip(ε)` (Algorithm 1); the agreed bits
//! form a shared unpredictable bitstream — the classic application of a
//! strong common coin (lotteries, committee sampling, leader rotation).
//! The example runs a multi-epoch beacon under an adversarial LIFO
//! scheduler and reports agreement and the empirical bias.
//!
//! ```sh
//! cargo run --release --example randomness_beacon [epochs]
//! ```

use aft::core::{CoinFlip, CoinFlipOutput, CoinFlipParams, CoinKind};
use aft::sim::{NetConfig, PartyId, SessionId, SessionTag, SimNetwork, StopReason};

fn main() {
    let epochs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let (n, t) = (4usize, 1usize);

    println!("== randomness beacon: {epochs} epochs of CoinFlip (Algorithm 1) ==");
    println!("n = {n}, t = {t}, adversarial LIFO scheduler\n");

    // One long-lived network; each epoch is a separate CoinFlip session.
    let mut net = SimNetwork::new(
        NetConfig::new(n, t, 99),
        aft::sim::scheduler_by_name("lifo").expect("lifo exists"),
    );

    let mut beacon = String::new();
    let mut ones = 0usize;
    for epoch in 0..epochs {
        let sid = SessionId::root().child(SessionTag::new("epoch", epoch));
        for p in 0..n {
            net.spawn(
                PartyId(p),
                sid.clone(),
                Box::new(CoinFlip::new(
                    CoinFlipParams::FixedK { k: 2 },
                    CoinKind::Oracle(1234 + epoch),
                )),
            );
        }
        let report = net.run(500_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);

        let bits: Vec<bool> = (0..n)
            .map(|p| {
                net.output_as::<CoinFlipOutput>(PartyId(p), &sid)
                    .expect("almost-sure termination")
                    .value
            })
            .collect();
        assert!(
            bits.windows(2).all(|w| w[0] == w[1]),
            "strong coin agreement"
        );
        if bits[0] {
            ones += 1;
        }
        beacon.push(if bits[0] { '1' } else { '0' });
    }

    println!("beacon bits : {beacon}");
    println!(
        "ones        : {ones}/{epochs}  (a fair coin concentrates near {}/2)",
        epochs
    );
    println!(
        "messages    : {} total across all epochs",
        net.metrics().sent
    );
    println!("\nevery epoch: all parties agreed on the bit — a strong common coin.");
}
