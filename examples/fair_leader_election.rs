//! Fair leader election with FBA (Algorithm 3).
//!
//! Four replicas each nominate themselves as the next epoch leader; one of
//! them is Byzantine-silent. Plain multivalued agreement may always elect
//! an adversary-favoured candidate when inputs differ — FBA guarantees
//! that with probability ≥ 1/2 the elected leader is some *honest*
//! replica's nominee (fair validity, Theorem 4.5). This example measures
//! that probability over a batch of elections.
//!
//! ```sh
//! cargo run --release --example fair_leader_election [trials]
//! ```

use aft::core::{CoinKind, FairChoiceParams, Fba};
use aft::sim::{
    run_trials, Bernoulli, NetConfig, PartyId, RandomScheduler, SessionId, SessionTag,
    SilentInstance, SimNetwork,
};

fn elect(seed: u64) -> Option<String> {
    let (n, t) = (4usize, 1usize);
    let mut net = SimNetwork::new(NetConfig::new(n, t, seed), Box::new(RandomScheduler));
    let sid = SessionId::root().child(SessionTag::new("election", 0));
    // Every replica nominates itself; replica 2 is Byzantine (silent —
    // the scheduler-level worst case for termination).
    for p in 0..n {
        if p == 2 {
            net.spawn(PartyId(p), sid.clone(), Box::new(SilentInstance));
        } else {
            net.spawn(
                PartyId(p),
                sid.clone(),
                Box::new(Fba::new(
                    format!("replica-{p}"),
                    FairChoiceParams::FixedK { k: 1 },
                    CoinKind::Oracle(seed),
                )),
            );
        }
    }
    net.run(500_000_000);
    // All honest outputs agree; return party 0's.
    let out = net.output_as::<String>(PartyId(0), &sid)?.clone();
    for p in [1usize, 3] {
        assert_eq!(
            net.output_as::<String>(PartyId(p), &sid),
            Some(&out),
            "agreement"
        );
    }
    Some(out)
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    println!("== fair leader election via FBA (Algorithm 3) ==");
    println!("4 replicas, replica 2 Byzantine-silent, {trials} elections\n");

    let outcomes = run_trials(0..trials, 8, elect);
    let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
    for o in outcomes.iter().flatten() {
        *counts.entry(o.clone()).or_default() += 1;
    }
    for (leader, count) in &counts {
        println!("  {leader}: elected {count} times");
    }

    let honest = ["replica-0", "replica-1", "replica-3"];
    let fair = Bernoulli::from_outcomes(
        outcomes
            .iter()
            .map(|o| o.as_deref().is_some_and(|l| honest.contains(&l))),
    );
    println!("\nhonest nominee elected: {fair}");
    println!("paper's fair-validity bound: >= 0.5 (Theorem 4.5)");
    assert!(
        fair.estimate() + fair.ci95() >= 0.5,
        "fair validity violated beyond statistical noise"
    );
}
