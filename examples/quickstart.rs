//! Quickstart: flip one strong common coin among four parties, one of
//! which has crashed, under a randomized asynchronous scheduler.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use aft::core::{CoinFlip, CoinFlipOutput, CoinFlipParams, CoinKind};
use aft::sim::{
    NetConfig, PartyId, RandomScheduler, SessionId, SessionTag, SilentInstance, SimNetwork,
};

fn main() {
    let (n, t) = (4usize, 1usize);
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024u64);

    println!("== aft quickstart: strong common coin (Algorithm 1) ==");
    println!("n = {n}, t = {t}, seed = {seed}; party 3 is crashed\n");

    let mut net = SimNetwork::new(NetConfig::new(n, t, seed), Box::new(RandomScheduler));
    let sid = SessionId::root().child(SessionTag::new("coin", 0));
    for p in 0..n {
        if p == 3 {
            net.spawn(PartyId(p), sid.clone(), Box::new(SilentInstance));
        } else {
            net.spawn(
                PartyId(p),
                sid.clone(),
                Box::new(CoinFlip::new(
                    CoinFlipParams::FixedK { k: 4 },
                    CoinKind::Oracle(seed),
                )),
            );
        }
    }

    let report = net.run(100_000_000);
    println!(
        "simulation: {} deliveries, {} messages sent, stop = {:?}",
        report.steps, report.metrics.sent, report.stop
    );

    for p in 0..3 {
        let out = net
            .output_as::<CoinFlipOutput>(PartyId(p), &sid)
            .expect("honest parties terminate almost surely");
        println!(
            "party {p}: coin = {}, local majority before final BA = {}, iterations = {}",
            out.value as u8, out.local_majority as u8, out.iterations
        );
    }

    let v0 = net
        .output_as::<CoinFlipOutput>(PartyId(0), &sid)
        .unwrap()
        .value;
    let all_agree = (0..3).all(|p| {
        net.output_as::<CoinFlipOutput>(PartyId(p), &sid)
            .unwrap()
            .value
            == v0
    });
    println!("\nall honest parties agree: {all_agree} (the STRONG coin property)");
    assert!(all_agree);
}
