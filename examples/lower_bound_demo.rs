//! Theorem 2.2, live: watch the AVSS lower bound assemble itself.
//!
//! Runs the exhaustive analysis of the toy AVSS (perfectly hiding,
//! perfectly correct in honest runs, always terminating — at `n = 4`,
//! `t = 1`) and the two attacks from the paper's Section 2, then prints
//! the contradiction: a faulty party forces wrong outputs with probability
//! 2/5, while any `(2/3 + ε)`-correct AVSS may only be wrong with
//! probability `1/3 − ε`.
//!
//! ```sh
//! cargo run --example lower_bound_demo
//! ```

use aft::lowerbound::{claim2_exact, theorem_2_2_report};

fn check(label: &str, ok: bool) {
    println!("  [{}] {label}", if ok { "ok" } else { "FAIL" });
}

fn main() {
    println!("== Theorem 2.2: no (2/3+ε)-correct AVSS with n ≤ 4t ==\n");
    println!("toy AVSS: n = 4 (A, B, C, dealer D), t = 1, GF(5) shares,");
    println!("one-time-pad masks; all statements below are EXHAUSTIVE over");
    println!("the protocol's entire randomness space (no sampling error).\n");

    let r = theorem_2_2_report();

    println!("step 1 — the toy protocol really is the 'impossible' object:");
    check(
        "honest runs: every party always outputs the dealer's secret",
        r.honest_correctness == 1.0,
    );
    check(
        "perfect hiding: any single view independent of the secret",
        r.hiding_exact,
    );

    println!("\nstep 2 — Claim 1 (equivocating dealer):");
    check(
        "A completes S with a view distributed exactly as honest s=0",
        r.claim1_a_views_match,
    );
    check(
        "B completes S with a view distributed exactly as honest s=1",
        r.claim1_b_views_match,
    );
    check(
        "reconstruction still agrees on one bound value ρ (no property broken yet)",
        r.claim1_outputs_consistent,
    );

    println!("\nstep 3 — Claim 2 (B simulates the s=1 world against an honest dealer):");
    let c2 = claim2_exact();
    check(
        "A's share-phase view remains the honest distribution",
        c2.views_match,
    );
    check(
        "honest parties stay mutually consistent (the attack is invisible)",
        c2.honest_consistent,
    );
    println!(
        "  Pr[A outputs 1 | dealer honestly shared 0] = {:.4}  (exactly 2/5)",
        c2.wrong_output_prob
    );

    println!("\nstep 4 — the contradiction:");
    println!(
        "  (2/3+ε)-correctness allows wrong outputs w.p. ≤ 1/3 − ε < {:.4}",
        r.allowed_wrong_output_sup
    );
    println!(
        "  measured wrong-output probability            = {:.4}",
        r.claim2_wrong_output_prob
    );
    for eps in [0.30, 0.20, 0.10, 0.05, 0.01] {
        let allowed = 1.0 / 3.0 - eps;
        println!(
            "    ε = {eps:>4}: allowed ≤ {allowed:.4}  vs measured {:.4}  → {}",
            r.claim2_wrong_output_prob,
            if r.claim2_wrong_output_prob > allowed {
                "violated"
            } else {
                "ok"
            }
        );
    }

    println!(
        "\nverdict: contradiction established = {}",
        r.contradiction_established()
    );
    println!("hence no always-terminating (2/3+ε)-correct 1-resilient AVSS at n = 4 —");
    println!("and by the paper's simulation argument, none for any n ≤ 4t.");
    assert!(r.contradiction_established());
}
