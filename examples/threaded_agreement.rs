//! The same protocol code over real OS threads: binary Byzantine
//! agreement with split inputs, driven through the `Runtime` trait on the
//! threaded backend — no schedulers, no seeds controlling delivery, just
//! the operating system's own nondeterminism.
//!
//! ```sh
//! cargo run --example threaded_agreement [rounds]
//! ```

use aft::ba::{BinaryBa, OracleCoin};
use aft::sim::{NetConfig, PartyId, Runtime, RuntimeExt, SessionId, SessionTag, ThreadedRuntime};
use std::time::{Duration, Instant};

fn main() {
    let iterations: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let n = 4;

    println!("== binary BA over real OS threads ==");
    println!("n = {n}, split inputs, {iterations} independent agreements\n");

    for i in 0..iterations {
        let sid = SessionId::root().child(SessionTag::new("ba", 0));
        let mut rt =
            ThreadedRuntime::with_poll(NetConfig::new(n, 1, i as u64), Duration::from_millis(3));
        for p in 0..n {
            rt.spawn(
                PartyId(p),
                sid.clone(),
                Box::new(BinaryBa::new(
                    p % 2 == 0,
                    Box::new(OracleCoin::new(1000 + i as u64)),
                )),
            );
        }
        let t0 = Instant::now();
        let report = rt.run(u64::MAX);
        let decisions: Vec<bool> = (0..n)
            .map(|p| {
                *rt.output_as::<bool>(PartyId(p), &sid)
                    .expect("BA terminates")
            })
            .collect();
        let agreed = decisions.windows(2).all(|w| w[0] == w[1]);
        println!(
            "  run {i:>2}: decided {} in {:>7.2?}  ({} deliveries, agreement: {agreed})",
            decisions[0] as u8,
            t0.elapsed(),
            report.metrics.delivered,
        );
        assert!(agreed, "agreement must hold over real threads");
    }
    println!("\nall runs agreed — same Instance code as the simulator, zero changes.");
}
