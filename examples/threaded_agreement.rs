//! The same protocol code over real OS threads: binary Byzantine
//! agreement with split inputs, running on crossbeam channels instead of
//! the simulator — no schedulers, no seeds controlling delivery, just the
//! operating system's own nondeterminism.
//!
//! ```sh
//! cargo run --example threaded_agreement [rounds]
//! ```

use aft::ba::{BinaryBa, OracleCoin};
use aft::sim::threaded::run_threaded;
use aft::sim::{Instance, SessionId, SessionTag};
use std::time::{Duration, Instant};

fn main() {
    let iterations: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let n = 4;

    println!("== binary BA over real OS threads ==");
    println!("n = {n}, split inputs, {iterations} independent agreements\n");

    for i in 0..iterations {
        let sid = SessionId::root().child(SessionTag::new("ba", 0));
        let spawns: Vec<Vec<(SessionId, Box<dyn Instance>)>> = (0..n)
            .map(|p| {
                let inst: Box<dyn Instance> = Box::new(BinaryBa::new(
                    p % 2 == 0,
                    Box::new(OracleCoin::new(1000 + i as u64)),
                ));
                vec![(sid.clone(), inst)]
            })
            .collect();
        let t0 = Instant::now();
        let outputs = run_threaded(n, 1, i as u64, spawns, Duration::from_millis(3));
        let decisions: Vec<bool> = outputs
            .iter()
            .map(|o| {
                *o.get(&sid)
                    .and_then(|v| v.downcast_ref::<bool>())
                    .expect("BA terminates")
            })
            .collect();
        let agreed = decisions.windows(2).all(|w| w[0] == w[1]);
        println!(
            "  run {i:>2}: decided {} in {:>7.2?}  (agreement: {agreed})",
            decisions[0] as u8,
            t0.elapsed()
        );
        assert!(agreed, "agreement must hold over real threads");
    }
    println!("\nall runs agreed — same Instance code as the simulator, zero changes.");
}
