//! A Byzantine-resilient lottery with `FairChoice` (Algorithm 2).
//!
//! Seven parties must pick one of five prize configurations. A coalition
//! should not be able to steer the draw away from any majority-preferred
//! set of outcomes: Theorem 4.3 guarantees every majority subset `G` of
//! outcomes wins with probability > 1/2. This example runs draws under an
//! adversarial starvation scheduler and checks agreement plus the spread
//! of outcomes.
//!
//! ```sh
//! cargo run --release --example verifiable_lottery [draws]
//! ```

use aft::core::{CoinKind, FairChoice, FairChoiceParams};
use aft::sim::{
    run_trials, NetConfig, PartyId, SessionId, SessionTag, SimNetwork, StarveScheduler,
};

const M: usize = 5;

fn draw(seed: u64) -> usize {
    let (n, t) = (7usize, 2usize);
    // The adversary starves party 0's messages as long as fairness allows.
    let mut net = SimNetwork::new(
        NetConfig::new(n, t, seed),
        Box::new(StarveScheduler::new([PartyId(0)])),
    );
    let sid = SessionId::root().child(SessionTag::new("lottery", 0));
    for p in 0..n {
        net.spawn(
            PartyId(p),
            sid.clone(),
            Box::new(FairChoice::new(
                M,
                FairChoiceParams::FixedK { k: 1 },
                CoinKind::Oracle(seed),
            )),
        );
    }
    net.run(1_000_000_000);
    let winner = *net
        .output_as::<usize>(PartyId(0), &sid)
        .expect("almost-sure termination");
    for p in 1..n {
        assert_eq!(
            net.output_as::<usize>(PartyId(p), &sid),
            Some(&winner),
            "all parties must agree on the draw"
        );
    }
    winner
}

fn main() {
    let draws: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);

    println!("== verifiable lottery: FairChoice({M}) under a starvation adversary ==");
    println!("n = 7, t = 2, {draws} draws\n");

    let winners = run_trials(0..draws, 8, draw);
    let mut histogram = [0usize; M];
    for &w in &winners {
        histogram[w] += 1;
    }
    for (i, count) in histogram.iter().enumerate() {
        println!("  outcome {i}: {count:>3} {}", "#".repeat(*count));
    }

    // Majority-subset check (Theorem 4.3): any 3 of 5 outcomes should
    // capture more than half the draws, up to sampling noise.
    let top3: usize = {
        let mut h = histogram;
        h.sort_unstable_by(|a, b| b.cmp(a));
        h[..3].iter().sum()
    };
    println!(
        "\nbest majority subset captured {top3}/{draws} draws \
         (Theorem 4.3 floor: > 1/2 for EVERY majority subset in expectation)"
    );
    println!("all draws agreed across all 7 parties.");
}
