//! Offline stand-in for `criterion`: wall-clock sampling benchmarks with
//! the `criterion_group!`/`criterion_main!` interface. Prints per-bench
//! statistics; set `BENCH_JSON=<path>` to also write a JSON summary.

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimizer from eliding `value`'s computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing statistics of one benchmark.
#[derive(Debug, Clone)]
struct Sample {
    name: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: usize,
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    times_ns: Vec<f64>,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.times_ns.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    results: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 60,
            results: Vec::new(),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            times_ns: Vec::new(),
        };
        f(&mut b);
        self.record(name, b.times_ns);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            times_ns: Vec::new(),
        };
        f(&mut b, input);
        let name = id.full;
        self.record(&name, b.times_ns);
        self
    }

    /// Runs one benchmark parameterized by `input` with its own sample
    /// count — for expensive cases (large `n` sweeps) that would take
    /// minutes at the group's configured size.
    pub fn bench_with_input_samples<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        samples: usize,
        mut f: F,
    ) -> &mut Self {
        assert!(samples > 0, "sample size must be positive");
        let mut b = Bencher {
            sample_size: samples,
            times_ns: Vec::new(),
        };
        f(&mut b, input);
        let name = id.full;
        self.record(&name, b.times_ns);
        self
    }

    fn record(&mut self, name: &str, mut times_ns: Vec<f64>) {
        if times_ns.is_empty() {
            eprintln!("warning: bench {name} recorded no samples");
            return;
        }
        times_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let n = times_ns.len();
        let mean = times_ns.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            times_ns[n / 2]
        } else {
            (times_ns[n / 2 - 1] + times_ns[n / 2]) / 2.0
        };
        let sample = Sample {
            name: name.to_string(),
            mean_ns: mean,
            median_ns: median,
            min_ns: times_ns[0],
            max_ns: times_ns[n - 1],
            iters: n,
        };
        println!(
            "{:<40} mean {:>12}  median {:>12}  min {:>12}  max {:>12}  ({} iters)",
            sample.name,
            fmt_ns(sample.mean_ns),
            fmt_ns(sample.median_ns),
            fmt_ns(sample.min_ns),
            fmt_ns(sample.max_ns),
            sample.iters
        );
        self.results.push(sample);
    }

    /// Prints the summary and, when `BENCH_JSON` is set, writes it as JSON.
    pub fn finish(&mut self) {
        if self.results.is_empty() {
            return;
        }
        if let Ok(path) = std::env::var("BENCH_JSON") {
            let mut out = String::from("{\n  \"benchmarks\": [\n");
            for (i, s) in self.results.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
                     \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"iters\": {}}}{}\n",
                    s.name,
                    s.mean_ns,
                    s.median_ns,
                    s.min_ns,
                    s.max_ns,
                    s.iters,
                    if i + 1 < self.results.len() { "," } else { "" }
                ));
            }
            out.push_str("  ]\n}\n");
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("warning: failed to write BENCH_JSON={path}: {e}");
            } else {
                eprintln!("bench summary written to {path}");
            }
        }
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
            criterion.finish();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench harness entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].iters, 5);
        assert_eq!(runs, 6, "5 samples + 1 warm-up");
    }

    #[test]
    fn bench_with_input_samples_overrides_group_size() {
        let mut c = Criterion::default().sample_size(60);
        let mut runs = 0u32;
        c.bench_with_input_samples(BenchmarkId::new("big", 256), &(), 3, |b, ()| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(c.results[0].iters, 3);
        assert_eq!(runs, 4, "3 samples + 1 warm-up");
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("acast/full_run", 7);
        assert_eq!(id.full, "acast/full_run/7");
    }

    #[test]
    fn stats_ordering() {
        let mut c = Criterion::default().sample_size(9);
        c.bench_function("spin", |b| b.iter(|| std::hint::black_box(0u64)));
        let s = &c.results[0];
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert!(s.mean_ns > 0.0);
    }
}
