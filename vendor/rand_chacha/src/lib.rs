//! Offline stand-in for `rand_chacha`: a genuine ChaCha12 block cipher
//! driving [`rand::RngCore`]. Deterministic per seed; the byte stream is
//! the standard ChaCha12 keystream (key = seed, nonce = 0).

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 12;

/// A ChaCha12-based deterministic random generator.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Cipher state words 4..12 hold the key (the seed).
    key: [u32; 8],
    /// 64-bit block counter (words 12..14).
    counter: u64,
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (w, init) in state.iter_mut().zip(initial) {
            *w = w.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let stream = |seed| {
            let mut r = ChaCha12Rng::seed_from_u64(seed);
            (0..64).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(stream(1), stream(1));
        assert_ne!(stream(1), stream(2));
    }

    #[test]
    fn words_look_uniform() {
        let mut r = ChaCha12Rng::seed_from_u64(9);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += r.next_u64().count_ones();
        }
        // 64k bits, expect ~32k ones; allow a wide margin.
        assert!((27_000..37_000).contains(&ones), "{ones}");
    }

    #[test]
    fn works_through_rng_trait() {
        let mut r = ChaCha12Rng::seed_from_u64(5);
        let x: bool = r.gen();
        let y: u64 = r.gen_range(0..100);
        let _ = x;
        assert!(y < 100);
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha12Rng::seed_from_u64(3);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(
            (0..20).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..20).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
