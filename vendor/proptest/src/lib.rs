//! Offline stand-in for `proptest`: randomized property testing without
//! shrinking. Each `proptest!` test runs `ProptestConfig::cases` cases with
//! inputs drawn from [`Strategy`] values; case seeds are a deterministic
//! function of the test's module path, name, and case index, so failures
//! reproduce across runs.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy yielding a fixed value (cloned per case).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f64);

/// Strategy over a type's whole domain, returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>`; duplicates collapse, so the set
    /// may come out smaller than the drawn size (matching small domains).
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates hash sets of values drawn from `element`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let len = self.size.sample(rng);
            let mut set = HashSet::with_capacity(len);
            // Bounded attempts so tiny domains cannot loop forever.
            for _ in 0..len * 4 {
                if set.len() >= len {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }
}

/// Support machinery used by the [`proptest!`] expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-case RNG: a function of test identity and case
    /// index, so failures reproduce run-to-run.
    pub fn case_rng(module: &str, test: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in module.bytes().chain(test.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

/// Asserts a property, reporting the failing case on panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality, reporting the failing case on panic.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality, reporting the failing case on panic.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng =
                    $crate::test_runner::case_rng(module_path!(), stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || { $body },
                ));
                if let Err(e) = __outcome {
                    eprintln!(
                        "proptest: case {}/{} of {} failed (deterministic; rerun reproduces)",
                        __case + 1,
                        __cfg.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::case_rng;

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let a: u64 = case_rng("m", "t", 3).gen();
        let b: u64 = case_rng("m", "t", 3).gen();
        let c: u64 = case_rng("m", "t", 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn map_and_collections(
            v in crate::collection::vec(0u32..5, 1..=8),
            s in crate::collection::hash_set(0usize..13, 0..4),
            b in any::<bool>(),
            m in (0u64..10).prop_map(|n| n * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 8);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!(s.len() < 4);
            prop_assert!(m % 2 == 0 && m < 20);
            let _ = b;
        }
    }
}
