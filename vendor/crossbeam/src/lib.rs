//! Offline stand-in for `crossbeam`: the unbounded MPMC channel subset the
//! threaded runtime uses, built on `Mutex<VecDeque>` + `Condvar`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out with the channel still open.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake receivers so they observe disconnection.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.chan.queue.lock().expect("channel poisoned");
            q.push_back(value);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a value, waiting up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.chan.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .ready
                    .wait_timeout(q, deadline - now)
                    .expect("channel poisoned");
                q = guard;
            }
        }

        /// Dequeues a value immediately if one is available.
        pub fn try_recv(&self) -> Option<T> {
            self.chan
                .queue
                .lock()
                .expect("channel poisoned")
                .pop_front()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_then_recv() {
            let (tx, rx) = unbounded();
            tx.send(42u32).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(42));
        }

        #[test]
        fn timeout_on_empty() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn disconnect_when_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(1));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn crosses_threads() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while got.len() < 100 {
                if let Ok(v) = rx.recv_timeout(Duration::from_millis(100)) {
                    got.push(v);
                }
            }
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
