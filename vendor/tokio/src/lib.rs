//! Offline stand-in for `tokio`: the single-threaded subset the async
//! backend uses — a current-thread [`runtime::Runtime`], a
//! [`task::LocalSet`] for non-`Send` tasks, and unbounded
//! [`sync::mpsc`] channels.
//!
//! Scheduling is strictly deterministic: ready tasks are polled in FIFO
//! wake order, `spawn_local` marks the new task ready immediately, and a
//! `block_on` whose future goes to sleep with no runnable task and no
//! external wake source panics (a genuine deadlock — there is no I/O
//! driver to wake anything later).

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// Sentinel task id the main (`block_on`) future wakes with.
const MAIN_TASK: usize = usize::MAX;

/// Wake-queue shared between wakers (which must be `Send + Sync`) and
/// the single-threaded executor that drains it.
#[derive(Default)]
struct ReadyQueue {
    ids: Mutex<VecDeque<usize>>,
}

impl ReadyQueue {
    fn push(&self, id: usize) {
        let mut ids = self.ids.lock().expect("ready queue poisoned");
        if !ids.contains(&id) {
            ids.push_back(id);
        }
    }

    fn pop(&self) -> Option<usize> {
        self.ids.lock().expect("ready queue poisoned").pop_front()
    }
}

struct TaskWaker {
    id: usize,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }
}

fn waker_for(id: usize, ready: &Arc<ReadyQueue>) -> Waker {
    Waker::from(Arc::new(TaskWaker {
        id,
        ready: Arc::clone(ready),
    }))
}

pub mod runtime {
    //! The current-thread runtime subset: `Builder::new_current_thread()
    //! .enable_all().build()` and [`Runtime::block_on`].

    use super::task::LocalSet;

    /// Builds a [`Runtime`]. Only the current-thread flavor exists in
    /// the stand-in.
    #[derive(Debug, Default)]
    pub struct Builder {
        _private: (),
    }

    impl Builder {
        /// Starts configuring a current-thread runtime.
        pub fn new_current_thread() -> Self {
            Builder { _private: () }
        }

        /// No-op: the stand-in has no I/O or time driver to enable.
        pub fn enable_all(&mut self) -> &mut Self {
            self
        }

        /// Builds the runtime (infallible here; the signature mirrors
        /// tokio's).
        pub fn build(&mut self) -> std::io::Result<Runtime> {
            Ok(Runtime { _private: () })
        }
    }

    /// A current-thread executor handle. All task state lives in the
    /// [`LocalSet`] driven on it, so the handle itself is inert.
    #[derive(Debug)]
    pub struct Runtime {
        _private: (),
    }

    impl Runtime {
        /// Runs `future` to completion on a throwaway local set.
        pub fn block_on<F: std::future::Future>(&self, future: F) -> F::Output {
            LocalSet::new().block_on(self, future)
        }
    }
}

pub mod task {
    //! Local (non-`Send`) task support: [`LocalSet`], `spawn_local`,
    //! [`yield_now`].

    use super::*;
    use crate::runtime::Runtime;

    type LocalFuture = Pin<Box<dyn Future<Output = ()>>>;

    /// A set of non-`Send` tasks driven on the current thread.
    ///
    /// Tasks persist across [`block_on`](LocalSet::block_on) calls: a
    /// task that parks (e.g. on an empty channel) resumes the next time
    /// a `block_on` drains the ready queue after something wakes it.
    #[derive(Default)]
    pub struct LocalSet {
        tasks: RefCell<Vec<Option<LocalFuture>>>,
        ready: Arc<ReadyQueue>,
    }

    impl LocalSet {
        /// Creates an empty task set.
        pub fn new() -> Self {
            Self::default()
        }

        /// Spawns `future` onto the set. The task is marked ready
        /// immediately and first polled by the next `block_on`.
        pub fn spawn_local<F>(&self, future: F) -> JoinHandle<F::Output>
        where
            F: Future + 'static,
        {
            let result = Rc::new(RefCell::new(JoinState::<F::Output>::default()));
            let slot = Rc::clone(&result);
            let wrapped: LocalFuture = Box::pin(async move {
                let out = future.await;
                let mut state = slot.borrow_mut();
                state.value = Some(out);
                if let Some(waiter) = state.waiter.take() {
                    waiter.wake();
                }
            });
            let mut tasks = self.tasks.borrow_mut();
            let id = tasks.len();
            tasks.push(Some(wrapped));
            self.ready.push(id);
            JoinHandle { result }
        }

        /// Runs `future` to completion, interleaving it with the set's
        /// ready tasks in deterministic FIFO wake order.
        ///
        /// # Panics
        ///
        /// Panics if `future` is pending while no task is runnable:
        /// with no I/O driver nothing external can wake the set, so
        /// that state is a deadlock, not a wait.
        pub fn block_on<F: Future>(&self, _rt: &Runtime, future: F) -> F::Output {
            let mut future = std::pin::pin!(future);
            let main_waker = waker_for(MAIN_TASK, &self.ready);
            let mut main_cx = Context::from_waker(&main_waker);
            loop {
                if let Poll::Ready(out) = future.as_mut().poll(&mut main_cx) {
                    return out;
                }
                let mut progressed = false;
                while let Some(id) = self.ready.pop() {
                    if id == MAIN_TASK {
                        progressed = true;
                        break;
                    }
                    self.poll_task(id);
                    progressed = true;
                }
                if !progressed {
                    panic!(
                        "tokio stand-in: block_on future is pending with no \
                         runnable task (deadlock)"
                    );
                }
            }
        }

        fn poll_task(&self, id: usize) {
            // Take the task out so it can spawn siblings while polled.
            let Some(mut task) = self.tasks.borrow_mut()[id].take() else {
                return; // already finished
            };
            let waker = waker_for(id, &self.ready);
            let mut cx = Context::from_waker(&waker);
            match task.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {} // drop the finished task
                Poll::Pending => self.tasks.borrow_mut()[id] = Some(task),
            }
        }
    }

    /// State a [`JoinHandle`] waits on.
    struct JoinState<T> {
        value: Option<T>,
        waiter: Option<Waker>,
    }

    impl<T> Default for JoinState<T> {
        fn default() -> Self {
            JoinState {
                value: None,
                waiter: None,
            }
        }
    }

    /// Handle to a spawned task's result.
    pub struct JoinHandle<T> {
        result: Rc<RefCell<JoinState<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Whether the task has completed.
        pub fn is_finished(&self) -> bool {
            self.result.borrow().value.is_some()
        }
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut state = self.result.borrow_mut();
            match state.value.take() {
                Some(v) => Poll::Ready(Ok(v)),
                None => {
                    state.waiter = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }

    /// Error from awaiting a [`JoinHandle`] (never produced by the
    /// stand-in — tasks are not cancellable — but part of the API).
    #[derive(Debug)]
    pub struct JoinError {
        _private: (),
    }

    impl std::fmt::Display for JoinError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "task failed")
        }
    }

    /// Yields once: wakes the current task and returns `Pending` so the
    /// executor moves to the next ready task.
    pub async fn yield_now() {
        struct YieldNow {
            yielded: bool,
        }
        impl Future for YieldNow {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.yielded {
                    Poll::Ready(())
                } else {
                    self.yielded = true;
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
        YieldNow { yielded: false }.await
    }
}

pub mod sync {
    //! The unbounded mpsc channel subset.

    pub mod mpsc {
        //! Unbounded multi-producer single-consumer channels whose
        //! `recv` integrates with the stand-in executor's wakers.

        use std::collections::VecDeque;
        use std::future::Future;
        use std::pin::Pin;
        use std::sync::{Arc, Mutex};
        use std::task::{Context, Poll, Waker};

        struct Inner<T> {
            queue: VecDeque<T>,
            recv_waker: Option<Waker>,
            senders: usize,
            receiver_alive: bool,
        }

        struct Shared<T> {
            inner: Mutex<Inner<T>>,
        }

        /// The sending half of an unbounded channel.
        pub struct UnboundedSender<T> {
            shared: Arc<Shared<T>>,
        }

        /// The receiving half of an unbounded channel.
        pub struct UnboundedReceiver<T> {
            shared: Arc<Shared<T>>,
        }

        /// Creates an unbounded mpsc channel.
        pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
            let shared = Arc::new(Shared {
                inner: Mutex::new(Inner {
                    queue: VecDeque::new(),
                    recv_waker: None,
                    senders: 1,
                    receiver_alive: true,
                }),
            });
            (
                UnboundedSender {
                    shared: Arc::clone(&shared),
                },
                UnboundedReceiver { shared },
            )
        }

        impl<T> Clone for UnboundedSender<T> {
            fn clone(&self) -> Self {
                self.shared.inner.lock().expect("channel poisoned").senders += 1;
                UnboundedSender {
                    shared: Arc::clone(&self.shared),
                }
            }
        }

        impl<T> Drop for UnboundedSender<T> {
            fn drop(&mut self) {
                let mut inner = self.shared.inner.lock().expect("channel poisoned");
                inner.senders -= 1;
                if inner.senders == 0 {
                    // Wake the receiver so it observes disconnection.
                    if let Some(w) = inner.recv_waker.take() {
                        drop(inner);
                        w.wake();
                    }
                }
            }
        }

        impl<T> UnboundedSender<T> {
            /// Enqueues `value`, waking the receiver if it is parked.
            pub fn send(&self, value: T) -> Result<(), error::SendError<T>> {
                let mut inner = self.shared.inner.lock().expect("channel poisoned");
                if !inner.receiver_alive {
                    return Err(error::SendError(value));
                }
                inner.queue.push_back(value);
                let waker = inner.recv_waker.take();
                drop(inner);
                if let Some(w) = waker {
                    w.wake();
                }
                Ok(())
            }
        }

        impl<T> Drop for UnboundedReceiver<T> {
            fn drop(&mut self) {
                self.shared
                    .inner
                    .lock()
                    .expect("channel poisoned")
                    .receiver_alive = false;
            }
        }

        impl<T> UnboundedReceiver<T> {
            /// Receives the next value, waiting until one is sent.
            /// Returns `None` once every sender is dropped and the
            /// queue is drained.
            pub fn recv(&mut self) -> impl Future<Output = Option<T>> + '_ {
                Recv { rx: self }
            }

            /// Dequeues a value if one is immediately available.
            pub fn try_recv(&mut self) -> Result<T, error::TryRecvError> {
                let mut inner = self.shared.inner.lock().expect("channel poisoned");
                match inner.queue.pop_front() {
                    Some(v) => Ok(v),
                    None if inner.senders == 0 => Err(error::TryRecvError::Disconnected),
                    None => Err(error::TryRecvError::Empty),
                }
            }
        }

        struct Recv<'a, T> {
            rx: &'a mut UnboundedReceiver<T>,
        }

        impl<T> Future for Recv<'_, T> {
            type Output = Option<T>;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
                let this = self.get_mut();
                let mut inner = this.rx.shared.inner.lock().expect("channel poisoned");
                if let Some(v) = inner.queue.pop_front() {
                    return Poll::Ready(Some(v));
                }
                if inner.senders == 0 {
                    return Poll::Ready(None);
                }
                inner.recv_waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }

        pub mod error {
            //! Channel error types.

            /// The receiver was dropped before the send.
            #[derive(Debug, PartialEq, Eq)]
            pub struct SendError<T>(pub T);

            impl<T> std::fmt::Display for SendError<T> {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    write!(f, "channel closed")
                }
            }

            /// Why a `try_recv` returned no value.
            #[derive(Debug, PartialEq, Eq)]
            pub enum TryRecvError {
                /// The channel is open but empty.
                Empty,
                /// Every sender is gone and the queue is drained.
                Disconnected,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::Builder;
    use crate::sync::mpsc;
    use crate::task::LocalSet;

    #[test]
    fn block_on_plain_future() {
        let rt = Builder::new_current_thread().enable_all().build().unwrap();
        assert_eq!(rt.block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn spawn_local_runs_and_join_handle_resolves() {
        let rt = Builder::new_current_thread().build().unwrap();
        let local = LocalSet::new();
        let handle = local.spawn_local(async { 7u32 });
        let got = local.block_on(&rt, async { handle.await.unwrap() });
        assert_eq!(got, 7);
    }

    #[test]
    fn channel_roundtrip_between_tasks() {
        let rt = Builder::new_current_thread().build().unwrap();
        let local = LocalSet::new();
        let (cmd_tx, mut cmd_rx) = mpsc::unbounded_channel::<u32>();
        let (rsp_tx, mut rsp_rx) = mpsc::unbounded_channel::<u32>();
        local.spawn_local(async move {
            while let Some(v) = cmd_rx.recv().await {
                rsp_tx.send(v * 2).unwrap();
            }
        });
        for i in 0..5u32 {
            cmd_tx.send(i).unwrap();
            let got = local.block_on(&rt, rsp_rx.recv()).unwrap();
            assert_eq!(got, i * 2);
        }
    }

    #[test]
    fn tasks_persist_across_block_on_calls() {
        let rt = Builder::new_current_thread().build().unwrap();
        let local = LocalSet::new();
        let (tx, mut rx) = mpsc::unbounded_channel::<u8>();
        let (out_tx, mut out_rx) = mpsc::unbounded_channel::<u8>();
        local.spawn_local(async move {
            let mut sum = 0u8;
            while let Some(v) = rx.recv().await {
                sum += v;
                out_tx.send(sum).unwrap();
            }
        });
        tx.send(1).unwrap();
        assert_eq!(local.block_on(&rt, out_rx.recv()), Some(1));
        tx.send(2).unwrap();
        assert_eq!(local.block_on(&rt, out_rx.recv()), Some(3));
    }

    #[test]
    fn recv_sees_disconnect() {
        let rt = Builder::new_current_thread().build().unwrap();
        let local = LocalSet::new();
        let (tx, mut rx) = mpsc::unbounded_channel::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(local.block_on(&rt, rx.recv()), Some(9));
        assert_eq!(local.block_on(&rt, rx.recv()), None);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = mpsc::unbounded_channel::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_panics_instead_of_hanging() {
        let rt = Builder::new_current_thread().build().unwrap();
        let local = LocalSet::new();
        let (_tx, mut rx) = mpsc::unbounded_channel::<u8>();
        let _ = local.block_on(&rt, rx.recv());
    }

    #[test]
    fn yield_now_interleaves_fifo() {
        let rt = Builder::new_current_thread().build().unwrap();
        let local = LocalSet::new();
        let (tx, mut rx) = mpsc::unbounded_channel::<u32>();
        for id in 0..3u32 {
            let tx = tx.clone();
            local.spawn_local(async move {
                for round in 0..2u32 {
                    tx.send(id * 10 + round).unwrap();
                    crate::task::yield_now().await;
                }
            });
        }
        drop(tx);
        let mut seen = Vec::new();
        while let Some(v) = local.block_on(&rt, rx.recv()) {
            seen.push(v);
        }
        // FIFO wake order: round 0 of each task, then round 1.
        assert_eq!(seen, vec![0, 10, 20, 1, 11, 21]);
    }
}
