//! Offline stand-in for the `rand` crate: the exact API subset the `aft`
//! workspace uses. See `vendor/README.md` for scope and caveats.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step — used to expand `u64` seeds into full seed blocks.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut s = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut s).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Values samplable from uniform random bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable uniformly (argument type of [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators ([`StdRng`]).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A fast, deterministic generator (xoshiro256\*\*). Matches the
    /// upstream `StdRng` contract — a good non-reproducible-across-versions
    /// PRNG — not its byte stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // Avoid the all-zero state, which xoshiro cannot leave.
            if s == [0; 4] {
                let mut st = 0xDEAD_BEEF_u64;
                for w in &mut s {
                    *w = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }
}

/// Random sequence operations ([`SliceRandom`]).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.gen_range(0..=3);
            assert!(y <= 3);
            let z: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        super::RngCore::fill_bytes(&mut r, &mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
