#!/usr/bin/env python3
"""Diff a criterion BENCH_JSON summary against the committed baseline.

Usage: check_bench_regression.py <baseline.json> <current.json>

Fails (exit 1) when any *guarded* benchmark — the delivery hot path —
regresses by more than the threshold (default 25%, override with
BENCH_REGRESSION_THRESHOLD, e.g. 1.25). Other benchmarks are reported
but only warn.

Medians are compared, and each benchmark's baseline/current ratio is
normalized by the median ratio across the whole suite: the baseline was
recorded on the committing machine, so a runner that is uniformly 2x
faster or slower shifts every ratio equally and cancels out, while a
genuine hot-path regression shows up as an outlier against the rest of
the suite. Because a change that slows the *entire* suite uniformly
would cancel out too, guarded benches additionally fail on a generous
absolute ratio (default 3x, override with BENCH_ABSOLUTE_CAP) — wide
enough to absorb machine-class differences, tight enough to catch a
catastrophic regression (the pre-Fenwick queue was 50x+).

Only millisecond-scale end-to-end delivery benches are guarded:
nanosecond microbenches (session_id/*) and the core-count-sensitive
sharded sweep (ba_sweep_n64/*) are reported but warn-only, since their
run-to-run variance on shared runners exceeds any sane threshold.
"""

import json
import os
import statistics
import sys

# The delivery hot path: end-to-end runs dominated by enqueue/pick/deliver
# work, at millisecond scale (stable on shared runners).
GUARDED_PREFIXES = (
    "acast/full_run",
    "ba/split_inputs",
)


def load(path):
    with open(path) as f:
        return {b["name"]: b for b in json.load(f)["benchmarks"]}


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    baseline = load(sys.argv[1])
    current = load(sys.argv[2])
    threshold = float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "1.25"))
    absolute_cap = float(os.environ.get("BENCH_ABSOLUTE_CAP", "3.0"))

    ratios = {
        name: current[name]["median_ns"] / base["median_ns"]
        for name, base in baseline.items()
        if name in current
    }
    suite_ratio = statistics.median(ratios.values()) if ratios else 1.0
    print(f"suite-wide median ratio (machine-speed normalizer): {suite_ratio:.2f}\n")

    failures = []
    for name, base in sorted(baseline.items()):
        guarded = name.startswith(GUARDED_PREFIXES)
        cur = current.get(name)
        if cur is None:
            msg = f"{name}: present in baseline but missing from current run"
            if guarded:
                failures.append(msg)
            else:
                print(f"warn: {msg}")
            continue
        normalized = ratios[name] / suite_ratio
        marker = "GUARDED" if guarded else "       "
        print(
            f"{marker} {name:<40} baseline {base['median_ns']:>14.1f} ns"
            f"  current {cur['median_ns']:>14.1f} ns"
            f"  ratio {ratios[name]:5.2f}  normalized {normalized:5.2f}"
        )
        regressed = None
        if normalized > threshold:
            regressed = (
                f"{name}: {normalized:.2f}x slower than the suite-normalized "
                f"baseline (threshold {threshold:.2f}x)"
            )
        elif ratios[name] > absolute_cap:
            regressed = (
                f"{name}: {ratios[name]:.2f}x slower than baseline in absolute "
                f"terms (cap {absolute_cap:.2f}x)"
            )
        if regressed:
            if guarded:
                failures.append(regressed)
            else:
                print(f"warn: {regressed}")
    for name in sorted(set(current) - set(baseline)):
        print(f"note: new benchmark without baseline: {name}")

    if failures:
        print("\nbench regression check FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nbench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
