#!/usr/bin/env python3
"""Diff a criterion BENCH_JSON summary against the committed baseline.

Usage: check_bench_regression.py <baseline.json> <current.json>

Fails (exit 1) when any *guarded* benchmark — the delivery hot path —
regresses by more than the threshold (default 25%, override with
BENCH_REGRESSION_THRESHOLD, e.g. 1.25). Other benchmarks are reported
but only warn.

Medians are compared, and each benchmark's baseline/current ratio is
normalized by the median ratio across the whole suite: the baseline was
recorded on the committing machine, so a runner that is uniformly 2x
faster or slower shifts every ratio equally and cancels out, while a
genuine hot-path regression shows up as an outlier against the rest of
the suite. Because a change that slows the *entire* suite uniformly
would cancel out too, guarded benches additionally fail on a generous
absolute ratio (default 3x, override with BENCH_ABSOLUTE_CAP) — wide
enough to absorb machine-class differences, tight enough to catch a
catastrophic regression (the pre-Fenwick queue was 50x+).

Guarded benches are the millisecond-scale end-to-end delivery runs,
the codec round trip, and the session-intern microbench (tight-loop
and low-variance enough to gate). The remaining nanosecond
microbenches (delivery/*) and the core-count-sensitive sweeps
(ba_sweep_n64/*, ba_sweep_n256/*) are reported but warn-only, since
their run-to-run variance on shared runners exceeds any sane
threshold.

A Markdown improvement/regression table is printed after the plain
report and, when GITHUB_STEP_SUMMARY is set (as in CI), appended to the
job summary so the diff is readable straight from the run page.
"""

import json
import os
import statistics
import sys

# The delivery hot path: end-to-end runs dominated by enqueue/pick/deliver
# work, at millisecond scale (stable on shared runners), plus the typed
# wire codec round trip and the session-intern path (both tight-loop and
# low-variance, and every backend's message/spawn path goes through them).
GUARDED_PREFIXES = (
    "acast/full_run",
    "ba/split_inputs",
    "codec/encode_decode",
    "session_id/child_intern",
    # The flight recorder's disabled fast path: a BA run through the
    # fully instrumented pipeline with tracing off must stay within the
    # gate, pinning "tracing costs ~nothing when disabled".
    "trace/off_overhead",
    # The virtual clock: the same BA run under the `net:` discrete-event
    # scheduler, pinning the cost of arrival-time sampling and
    # earliest-arrival picks over the order-only schedulers.
    "net/clock_overhead",
)


def load(path):
    with open(path) as f:
        return {b["name"]: b for b in json.load(f)["benchmarks"]}


def fmt_ns(ns):
    """Human-scaled duration."""
    if ns >= 1e9:
        return f"{ns / 1e9:.2f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f} µs"
    return f"{ns:.0f} ns"


def markdown_table(rows, suite_ratio, threshold):
    """Build the Markdown improvement/regression table."""
    lines = [
        "## Bench diff vs committed baseline",
        "",
        f"Suite-wide median ratio (machine-speed normalizer): "
        f"**{suite_ratio:.2f}×** — per-bench deltas below are normalized "
        f"by it; guarded benches fail beyond {threshold:.2f}×.",
        "",
        "| benchmark | baseline | current | normalized Δ | status |",
        "|---|---:|---:|---:|:---:|",
    ]
    for name, base_ns, cur_ns, normalized, guarded, failed in rows:
        if cur_ns is None:
            status = "❌ missing" if failed else "⚠️ missing"
            if guarded:
                status += " (guarded)"
            lines.append(f"| `{name}` | {fmt_ns(base_ns)} | — | — | {status} |")
            continue
        delta_pct = (normalized - 1.0) * 100.0
        if failed:
            status = "❌ regression"
        elif normalized > 1.05:
            status = "⚠️ slower"
        elif normalized < 0.95:
            status = "✅ faster"
        else:
            status = "· unchanged"
        if guarded:
            status += " (guarded)"
        lines.append(
            f"| `{name}` | {fmt_ns(base_ns)} | {fmt_ns(cur_ns)} "
            f"| {delta_pct:+.1f}% | {status} |"
        )
    return "\n".join(lines) + "\n"


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    baseline = load(sys.argv[1])
    current = load(sys.argv[2])
    threshold = float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "1.25"))
    absolute_cap = float(os.environ.get("BENCH_ABSOLUTE_CAP", "3.0"))

    ratios = {
        name: current[name]["median_ns"] / base["median_ns"]
        for name, base in baseline.items()
        if name in current
    }
    suite_ratio = statistics.median(ratios.values()) if ratios else 1.0
    print(f"suite-wide median ratio (machine-speed normalizer): {suite_ratio:.2f}\n")

    failures = []
    table_rows = []
    for name, base in sorted(baseline.items()):
        guarded = name.startswith(GUARDED_PREFIXES)
        cur = current.get(name)
        if cur is None:
            msg = f"{name}: present in baseline but missing from current run"
            if guarded:
                failures.append(msg)
            else:
                print(f"warn: {msg}")
            table_rows.append((name, base["median_ns"], None, None, guarded, guarded))
            continue
        normalized = ratios[name] / suite_ratio
        marker = "GUARDED" if guarded else "       "
        print(
            f"{marker} {name:<40} baseline {base['median_ns']:>14.1f} ns"
            f"  current {cur['median_ns']:>14.1f} ns"
            f"  ratio {ratios[name]:5.2f}  normalized {normalized:5.2f}"
        )
        regressed = None
        if normalized > threshold:
            regressed = (
                f"{name}: {normalized:.2f}x slower than the suite-normalized "
                f"baseline (threshold {threshold:.2f}x)"
            )
        elif ratios[name] > absolute_cap:
            regressed = (
                f"{name}: {ratios[name]:.2f}x slower than baseline in absolute "
                f"terms (cap {absolute_cap:.2f}x)"
            )
        failed = False
        if regressed:
            if guarded:
                failures.append(regressed)
                failed = True
            else:
                print(f"warn: {regressed}")
        table_rows.append(
            (name, base["median_ns"], cur["median_ns"], normalized, guarded, failed)
        )
    for name in sorted(set(current) - set(baseline)):
        print(f"note: new benchmark without baseline: {name}")

    table = markdown_table(table_rows, suite_ratio, threshold)
    print("\n" + table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(table + "\n")

    if failures:
        print("\nbench regression check FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nbench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
