//! The adversarial scenario conformance suite — the repo's systematic
//! "no scenario violates safety" net, and the scaffold every future
//! backend must pass to land behind the `Runtime` seam.
//!
//! A fixed [`ScenarioMatrix`] sweeps the BA and SVSS share→rec stacks
//! across backends × schedulers × fault plans × seeds:
//!
//! * **backends** — `sim`, `sharded:1`, `sharded:4`, `wire`, `async`
//!   (the deterministic set — `wire` round-trips every envelope through
//!   the byte codec and per-party OS sockets, `async` dispatches every
//!   delivery into per-party event-loop tasks; the threaded backend is
//!   exercised separately below, since its schedules are not
//!   reproducible);
//! * **schedulers** — every family in [`ALL_SCHEDULERS`], so a newly
//!   registered scheduler automatically joins the matrix;
//! * **fault plans** — each stack's [`StackKind::standard_plans`]:
//!   generic behaviours (silent, crash, mute-after, garbage, equivocate)
//!   plus the protocol crates' registered attacks;
//! * **seeds** — a small pinned set.
//!
//! Every cell checks the machine-stated invariants of
//! [`aft::core::scenarios`] (agreement/validity for BA, binding + secrecy
//! proxy for SVSS, output-set consistency for common subset, quiescence
//! and message conservation everywhere) — the suite fails on the first
//! violated cell. On top, the whole matrix must be *reproducible from
//! `(seed, scenario string)` alone*: a second sweep has to reproduce
//! every cell bit-for-bit; on locality-scheduled cells the in-memory
//! deterministic backends must agree bit-for-bit with each other; and
//! `wire` must agree bit-for-bit with `sim` on every plan whose
//! Byzantine payloads are well-formed, while the byte-junk plans
//! (`garbage`/`equivocate`) must be *rejected* by every honest decoder
//! with zero panics and zero safety violations.

use aft::core::scenarios::{run_cell, standard_registry, CellReport, StackKind};
use aft::sim::{MatrixCell, Scenario, ScenarioMatrix, ALL_SCHEDULERS};

const BACKENDS: &[&str] = &["sim", "sharded:1", "sharded:4", "wire", "async"];
const SEEDS: &[u64] = &[5, 6];
const THREADS: usize = 8;

fn scheduler_axis() -> Vec<String> {
    ALL_SCHEDULERS
        .iter()
        .map(|f| f.example.to_string())
        .collect()
}

fn fixed_matrix(kind: StackKind) -> ScenarioMatrix {
    ScenarioMatrix {
        n: 4,
        t: 1,
        backends: BACKENDS.iter().map(|b| b.to_string()).collect(),
        schedulers: scheduler_axis(),
        plans: kind
            .standard_plans()
            .iter()
            .map(|p| p.to_string())
            .collect(),
        seeds: SEEDS.to_vec(),
    }
}

fn sweep(kind: StackKind) -> Vec<MatrixCell<CellReport>> {
    let registry = standard_registry();
    fixed_matrix(kind).run(THREADS, |scenario, seed| {
        run_cell(kind, scenario, seed, &registry)
    })
}

fn assert_no_violations(kind: StackKind, cells: &[MatrixCell<CellReport>]) {
    let violating: Vec<String> = cells
        .iter()
        .filter(|c| !c.outcome.violations.is_empty())
        .map(|c| format!("{} seed={} -> {:?}", c.spec, c.seed, c.outcome.violations))
        .collect();
    assert!(
        violating.is_empty(),
        "{} stack: {} unsafe cells:\n{}",
        kind.label(),
        violating.len(),
        violating.join("\n")
    );
}

/// The matrix floor promised by the issue: ≥ 3 deterministic in-memory
/// backends plus the wire-serialized backend, ≥ 4 schedulers, ≥ 6 fault
/// plans on both headline stacks — and the wire rows run under every
/// scheduler family with the silent/crash/garbage/equivocate plans
/// included (they are in every stack's standard plan set).
#[test]
fn fixed_matrix_meets_the_floor() {
    assert!(BACKENDS.len() >= 4);
    assert!(BACKENDS.contains(&"wire"), "wire cells are part of the net");
    assert!(scheduler_axis().len() >= 4);
    for kind in [StackKind::Ba, StackKind::SvssChain] {
        assert!(kind.standard_plans().len() >= 6, "{}", kind.label());
        for fault in ["silent", "crash", "garbage", "equivocate"] {
            assert!(
                kind.standard_plans().iter().any(|p| p.contains(fault)),
                "{}: plan set must cover {fault}",
                kind.label()
            );
        }
    }
}

/// BA stack: zero safety violations across the whole fixed matrix, and a
/// re-sweep (re-parsing every scenario string) reproduces every cell
/// bit-for-bit.
#[test]
fn ba_matrix_is_safe_and_reproducible() {
    let first = sweep(StackKind::Ba);
    assert_no_violations(StackKind::Ba, &first);
    let again = sweep(StackKind::Ba);
    assert_eq!(first, again, "BA matrix must reproduce bit-for-bit");
}

/// SVSS share→rec stack: zero safety violations across the whole fixed
/// matrix, reproducible bit-for-bit.
#[test]
fn svss_matrix_is_safe_and_reproducible() {
    let first = sweep(StackKind::SvssChain);
    assert_no_violations(StackKind::SvssChain, &first);
    let again = sweep(StackKind::SvssChain);
    assert_eq!(first, again, "SVSS matrix must reproduce bit-for-bit");
}

/// Common-subset stack: output-set consistency across a reduced matrix
/// (the CS stack runs n embedded BAs per cell, so the axes are trimmed to
/// keep the suite fast).
#[test]
fn common_subset_matrix_is_safe_and_reproducible() {
    let registry = standard_registry();
    let matrix = ScenarioMatrix {
        n: 4,
        t: 1,
        backends: BACKENDS.iter().map(|b| b.to_string()).collect(),
        schedulers: vec![
            "random".into(),
            "lifo".into(),
            "starve:1".into(),
            "block:8".into(),
        ],
        plans: StackKind::CommonSubset
            .standard_plans()
            .iter()
            .map(|p| p.to_string())
            .collect(),
        seeds: vec![9],
    };
    let run = || {
        matrix.run(THREADS, |scenario, seed| {
            run_cell(StackKind::CommonSubset, scenario, seed, &registry)
        })
    };
    let first = run();
    assert_no_violations(StackKind::CommonSubset, &first);
    assert_eq!(first, run(), "CS matrix must reproduce bit-for-bit");
}

/// The delivery pipeline's buffer pools are *live* on every deterministic
/// backend — the reuse/alloc counters tick during an ordinary BA run — so
/// every bit-identity assertion in this suite already exercises pooled
/// delivery. The counters themselves are diagnostic only and excluded
/// from cell fingerprints by construction, which is what keeps pooled
/// runs bit-identical to the pre-pool seed behavior.
#[test]
fn pooling_is_active_but_invisible_to_conformance() {
    use aft::ba::{BinaryBa, OracleCoin};
    use aft::sim::{runtime_by_name, NetConfig, PartyId, SessionId, SessionTag};
    for backend in ["sim", "sharded:4", "wire", "async"] {
        let mut rt = runtime_by_name(backend, NetConfig::new(4, 1, 7)).unwrap();
        let sid = SessionId::root().child(SessionTag::new("pool-proof", 0));
        for p in 0..4 {
            rt.spawn(
                PartyId(p),
                sid.clone(),
                Box::new(BinaryBa::new(true, Box::new(OracleCoin::new(7)))),
            );
        }
        rt.run(u64::MAX);
        let m = rt.metrics();
        assert!(
            m.pool_reused + m.pool_alloc > 0,
            "{backend}: buffer pooling must be active on the delivery path"
        );
    }
}

/// Runs `kind` under one scenario string (with the backend substituted)
/// and returns the cell report.
fn run_on(kind: StackKind, spec: &str, backend: &str, seed: u64) -> CellReport {
    let registry = standard_registry();
    let scenario = Scenario::parse(&format!("{spec},rt={backend}"))
        .unwrap_or_else(|| panic!("bad spec {spec:?} rt={backend}"));
    run_cell(kind, &scenario, seed, &registry)
}

/// Cross-backend differential: under the locality-preserving `block:8`
/// scheduler the deterministic backends resolve the *identical* schedule
/// (PR 3's equivalence), so for every fault plan in the conformance set,
/// `sim`, `sharded:1` and `sharded:4` must produce bit-identical cell
/// reports — outputs, per-kind metrics, sends, deliveries and steps —
/// now extended from honest runs to every adversarial plan.
///
/// The BA stack is bit-identical on every seed tried. The SVSS chain is
/// pinned to a seed set on which full equality holds (seeds 3 and 8 of
/// the probe sweep): SVSS core formation is genuinely
/// schedule-sensitive, and on some seeds `sim` and `sharded` settle on
/// different (equally valid) cores — outputs still bind to the same
/// secret, but per-party bundle fingerprints differ. Same precedent as
/// the pinned common-subset counts in `cross_backend.rs`.
#[test]
fn adversarial_cells_bit_identical_across_backends_under_block_scheduler() {
    for (kind, seeds, plans) in [
        (
            StackKind::Ba,
            &[1u64, 2, 3][..],
            StackKind::Ba.standard_plans(),
        ),
        (
            StackKind::SvssChain,
            &[3u64, 8][..],
            StackKind::SvssChain.standard_plans(),
        ),
    ] {
        for plan in plans {
            let corrupt = if plan.is_empty() {
                String::new()
            } else {
                format!(",corrupt={plan}")
            };
            let spec = format!("n=4,t=1{corrupt},sched=block:8");
            for &seed in seeds {
                let reference = run_on(kind, &spec, "sim", seed);
                assert!(
                    reference.violations.is_empty(),
                    "{spec} seed={seed}: {:?}",
                    reference.violations
                );
                for backend in ["sharded:1", "sharded:4"] {
                    assert_eq!(
                        run_on(kind, &spec, backend, seed),
                        reference,
                        "{spec} rt={backend} seed={seed}"
                    );
                }
            }
        }
    }
}

/// The shard-count invariance half of the differential, with no
/// scheduler restriction: for *every* scheduler family and fault plan,
/// the sharded schedule is a pure function of `(seed, scheduler)` — so
/// `sharded:1`, `sharded:2` and `sharded:4` must agree bit-for-bit even
/// where they legitimately diverge from `sim`.
#[test]
fn adversarial_cells_invariant_under_shard_count_on_every_scheduler() {
    for (kind, plans) in [
        (StackKind::Ba, StackKind::Ba.standard_plans()),
        (StackKind::SvssChain, StackKind::SvssChain.standard_plans()),
    ] {
        for sched in scheduler_axis() {
            for plan in plans {
                let corrupt = if plan.is_empty() {
                    String::new()
                } else {
                    format!(",corrupt={plan}")
                };
                let spec = format!("n=4,t=1{corrupt},sched={sched}");
                let seed = 8;
                let reference = run_on(kind, &spec, "sharded:1", seed);
                for backend in ["sharded:2", "sharded:4"] {
                    assert_eq!(
                        run_on(kind, &spec, backend, seed),
                        reference,
                        "{spec} rt={backend}"
                    );
                }
            }
        }
    }
}

/// Wire-backend differential: the byte boundary must not perturb the
/// deterministic schedule. On every plan whose Byzantine payloads are
/// *well-formed* (everything except the byte-junk `garbage`/`equivocate`
/// faults, which legitimately change what receivers see), a wire cell is
/// bit-identical to the `sim` cell of the same `(seed, scenario)` —
/// outputs, per-kind metrics, sends, deliveries and steps.
#[test]
fn wire_cells_bit_identical_to_sim_on_well_formed_plans() {
    let byte_junk = |plan: &str| plan.contains("garbage") || plan.contains("equivocate");
    for (kind, seeds) in [
        (StackKind::Ba, &[1u64, 5][..]),
        (StackKind::SvssChain, &[3u64, 8][..]),
        (StackKind::CommonSubset, &[9u64][..]),
    ] {
        for plan in kind.standard_plans().iter().filter(|p| !byte_junk(p)) {
            let corrupt = if plan.is_empty() {
                String::new()
            } else {
                format!(",corrupt={plan}")
            };
            for sched in ["random", "lifo", "starve:1"] {
                let spec = format!("n=4,t=1{corrupt},sched={sched}");
                for &seed in seeds {
                    let reference = run_on(kind, &spec, "sim", seed);
                    assert_eq!(
                        run_on(kind, &spec, "wire", seed),
                        reference,
                        "{} {spec} rt=wire seed={seed}",
                        kind.label()
                    );
                }
            }
        }
    }
}

/// Event-loop differential: `rt=async` reuses the simulator's scheduler
/// and virtual clock verbatim and only moves node-side dispatch into
/// per-party event-loop tasks, so — unlike `wire` — it must match `sim`
/// bit-for-bit on *every* plan, byte-junk included (payloads never leave
/// memory, so `garbage`/`equivocate` corrupt exactly the same frames).
/// Each cell is also re-run to pin reproducibility from
/// `(seed, scenario string)`.
#[test]
fn async_cells_bit_identical_to_sim_on_every_plan() {
    for (kind, seeds) in [
        (StackKind::Ba, &[1u64, 5][..]),
        (StackKind::SvssChain, &[3u64, 8][..]),
        (StackKind::CommonSubset, &[9u64][..]),
    ] {
        for plan in kind.standard_plans() {
            let corrupt = if plan.is_empty() {
                String::new()
            } else {
                format!(",corrupt={plan}")
            };
            for sched in ["random", "lifo", "net:lat=1..8"] {
                let spec = format!("n=4,t=1{corrupt},sched={sched}");
                for &seed in seeds {
                    let reference = run_on(kind, &spec, "sim", seed);
                    let cell = run_on(kind, &spec, "async", seed);
                    assert_eq!(
                        cell,
                        reference,
                        "{} {spec} rt=async seed={seed}",
                        kind.label()
                    );
                    assert_eq!(
                        run_on(kind, &spec, "async", seed),
                        cell,
                        "{} {spec} seed={seed}: async cell must reproduce",
                        kind.label()
                    );
                }
            }
        }
    }
}

/// Byte-fuzzed garbage on the wire backend: the `garbage` and
/// `equivocate` plans emit genuinely malformed, truncated and
/// kind-spoofed frames there. Every honest decoder must reject them —
/// zero panics, zero safety violations (checked by `run_cell`'s
/// invariants) — while the metrics prove the junk bytes actually
/// happened and were observed; and the cells stay reproducible from
/// `(seed, scenario string)`.
#[test]
fn wire_cells_survive_byte_fuzzed_garbage_frames() {
    let registry = standard_registry();
    for kind in StackKind::all() {
        for plan in kind
            .standard_plans()
            .iter()
            .filter(|p| p.contains("garbage") || p.contains("equivocate"))
        {
            for sched in ["random", "fifo", "block:8"] {
                let spec = format!("n=4,t=1,corrupt={plan},sched={sched},rt=wire");
                let scenario = Scenario::parse(&spec).unwrap();
                for seed in [5u64, 6] {
                    let report = run_cell(kind, &scenario, seed, &registry);
                    assert!(
                        report.violations.is_empty(),
                        "{} {spec} seed={seed}: {:?}",
                        kind.label(),
                        report.violations
                    );
                    assert_eq!(
                        report,
                        run_cell(kind, &scenario, seed, &registry),
                        "{} {spec} seed={seed}: wire cell must reproduce",
                        kind.label()
                    );
                }
            }
        }
    }
}

/// The byte-level adversary is real, not simulated: a wire garbage run
/// records malformed frames on the transport and decode misses at the
/// honest receivers.
#[test]
fn wire_garbage_runs_record_malformed_frames_and_misses() {
    use aft::sim::{runtime_by_name, GarbageInstance, NetConfig, PartyId, RuntimeExt};
    let _ = standard_registry(); // installs the global codecs
    let mut rt = runtime_by_name("wire", NetConfig::new(4, 1, 7)).unwrap();
    let session = aft::sim::SessionId::root().child(aft::sim::SessionTag::new("fuzzed", 0));
    for p in 0..3 {
        rt.spawn(
            PartyId(p),
            session.clone(),
            Box::new(aft::ba::BinaryBa::new(
                true,
                Box::new(aft::ba::OracleCoin::new(7)),
            )),
        );
    }
    rt.spawn(
        PartyId(3),
        session.clone(),
        Box::new(GarbageInstance::new(64)),
    );
    rt.run_to_quiescence();
    let m = rt.metrics();
    assert!(m.wire_frames > 0, "bytes moved");
    assert!(
        m.wire_malformed > 0,
        "malformed frames were injected: {m:?}"
    );
    let total_misses: u64 = m.decode_misses().map(|(_, c)| c).sum();
    assert!(total_misses > 0, "honest decoders observed rejections");
    for p in 0..3 {
        assert_eq!(
            rt.output_as::<bool>(PartyId(p), &session),
            Some(&true),
            "byte junk must not derail agreement"
        );
    }
}

/// The threaded backend runs the same scenarios (schedulers are the OS's
/// prerogative there): safety invariants must hold even without
/// deterministic replay. A trimmed plan set keeps the OS-thread churn
/// modest.
#[test]
fn threaded_backend_passes_the_conformance_invariants() {
    let registry = standard_registry();
    for (kind, plans) in [
        (StackKind::Ba, &StackKind::Ba.standard_plans()[..5]),
        (
            StackKind::SvssChain,
            &StackKind::SvssChain.standard_plans()[..5],
        ),
    ] {
        for plan in plans {
            let corrupt = if plan.is_empty() {
                String::new()
            } else {
                format!(",corrupt={plan}")
            };
            let spec = format!("n=4,t=1{corrupt},rt=threaded");
            let scenario = Scenario::parse(&spec).unwrap();
            let report = run_cell(kind, &scenario, 13, &registry);
            assert!(
                report.violations.is_empty(),
                "{} {spec}: {:?}",
                kind.label(),
                report.violations
            );
        }
    }
}

/// Tracing is schedule-invisible: running a cell with the flight
/// recorder attached (full or ring) yields a bit-identical
/// [`CellReport`] — same outputs fingerprint, same message counts, same
/// step count — on every deterministic backend. The recorder never
/// touches RNGs, schedules or fingerprints; it only observes.
#[test]
fn tracing_is_bit_invisible_to_conformance() {
    use aft::core::scenarios::run_cell_traced;
    use aft::sim::TraceMode;
    let registry = standard_registry();
    for backend in ["sim", "sharded:4", "wire", "async"] {
        for (kind, plan) in [
            (StackKind::Ba, "garbage:40@3"),
            (StackKind::Ba, "equivocate:12@1"),
            (StackKind::SvssChain, "equivocal-reveal@3"),
        ] {
            let spec = format!("n=4,t=1,corrupt={plan},sched=random,rt={backend}");
            let scenario = Scenario::parse(&spec).unwrap();
            for seed in SEEDS {
                let off = run_cell(kind, &scenario, *seed, &registry);
                let (full, full_events) =
                    run_cell_traced(kind, &scenario, *seed, &registry, TraceMode::Full);
                let (ring, ring_events) =
                    run_cell_traced(kind, &scenario, *seed, &registry, TraceMode::Ring(256));
                assert_eq!(
                    off,
                    full,
                    "{} {spec} seed={seed}: trace-on != trace-off",
                    kind.label()
                );
                assert_eq!(
                    off,
                    ring,
                    "{} {spec} seed={seed}: ring trace perturbed the run",
                    kind.label()
                );
                assert!(
                    !full_events.is_empty(),
                    "{spec}: full recorder captured nothing"
                );
                assert!(ring_events.len() <= 256, "{spec}: ring exceeded its bound");
            }
        }
    }
}

/// The recorded causal message DAG is well-formed. On `sim` (globally
/// ordered stream): every `Send.causal_parent` names a `Deliver` of the
/// sending party that already appeared in the stream; every `Deliver`
/// consumes a previously recorded `Send` of the same `seq`; and
/// parentless (root) sends occur only in the spawn phase — never after
/// the current episode has started delivering. On `sharded:4` (events
/// flattened in party order at each barrier) the per-edge properties
/// must still hold; the spawn-phase ordering is checked per party
/// implicitly by the parent-precedes-child rule.
#[test]
fn recorded_causal_dag_is_well_formed() {
    use aft::core::scenarios::run_cell_traced;
    use aft::sim::{TraceEvent, TraceMode};
    use std::collections::HashSet;
    let registry = standard_registry();
    for (backend, strict_roots) in [
        ("sim", true),
        ("wire", true),
        ("async", true),
        ("sharded:4", false),
    ] {
        let spec = format!("n=4,t=1,corrupt=equivocate:10@2,sched=random,rt={backend}");
        let scenario = Scenario::parse(&spec).unwrap();
        let (_, events) = run_cell_traced(
            StackKind::SvssChain,
            &scenario,
            5,
            &registry,
            TraceMode::Full,
        );
        assert!(!events.is_empty(), "{backend}: no events recorded");
        let mut delivered: HashSet<(aft::sim::PartyId, u64)> = HashSet::new();
        let mut sent_seqs: HashSet<u64> = HashSet::new();
        let mut episode_delivering = false;
        for (i, ev) in events.iter().enumerate() {
            match ev {
                TraceEvent::EpisodeStart { .. } | TraceEvent::EpisodeEnd { .. } => {
                    episode_delivering = false;
                }
                TraceEvent::Send {
                    from,
                    seq,
                    causal_parent,
                    ..
                } => {
                    sent_seqs.insert(*seq);
                    match causal_parent {
                        Some(cp) => assert!(
                            delivered.contains(&(*from, *cp)),
                            "{backend} event {i}: causal parent ({from:?}, {cp}) \
                             does not precede its Send"
                        ),
                        None => assert!(
                            !(strict_roots && episode_delivering),
                            "{backend} event {i}: root Send after the episode \
                             started delivering"
                        ),
                    }
                }
                TraceEvent::Deliver {
                    party, step, seq, ..
                } => {
                    assert!(
                        sent_seqs.contains(seq),
                        "{backend} event {i}: Deliver of seq {seq} precedes its Send"
                    );
                    delivered.insert((*party, *step));
                    episode_delivering = true;
                }
                _ => {}
            }
        }
        assert!(
            !delivered.is_empty() && !sent_seqs.is_empty(),
            "{backend}: DAG must be non-trivial"
        );
    }
}

/// Liveness after healing: partitions under the virtual-time `net:`
/// scheduler are structured *delay*, never loss, so BA and common-subset
/// cells under a partition-then-heal plan must terminate with zero
/// invariant violations on every pinned seed and deterministic backend —
/// and a never-healing cut of ≤ t parties must *still* terminate, since
/// the paper's model only promises eventual delivery, which the cut
/// respects. Each cell is also re-run to pin bit-for-bit reproducibility
/// from `(seed, scenario string)`.
#[test]
fn net_partition_heal_cells_terminate_on_every_backend() {
    let registry = standard_registry();
    for (kind, sched) in [
        (StackKind::Ba, "net:lat=1..12,partition=p50,heal=200"),
        (StackKind::Ba, "net:lat=exp:5,partition=3,heal=120"),
        (StackKind::Ba, "net:lat=1..8,partition=p100"),
        (
            StackKind::CommonSubset,
            "net:lat=1..12,partition=p50,heal=200",
        ),
        (StackKind::CommonSubset, "net:lat=1..8,partition=p100"),
    ] {
        for backend in BACKENDS {
            let spec = format!("n=4,t=1,sched={sched},rt={backend}");
            let scenario = Scenario::parse(&spec).unwrap_or_else(|| panic!("{spec:?} must parse"));
            for seed in SEEDS {
                let first = run_cell(kind, &scenario, *seed, &registry);
                assert!(
                    first.violations.is_empty(),
                    "{} {spec} seed={seed}: {:?}",
                    kind.label(),
                    first.violations
                );
                assert_eq!(
                    first,
                    run_cell(kind, &scenario, *seed, &registry),
                    "{} {spec} seed={seed}: net cell must reproduce bit-for-bit",
                    kind.label()
                );
            }
        }
    }
}

/// Crash-recovery conformance: a party that crashes at deploy time and
/// rejoins at a virtual time mid-run must not endanger the honest
/// parties' safety or termination, on the BA and SVSS chains, across
/// `sim`, `sharded:4` and `wire` — and the cells replay bit-for-bit
/// from `(seed, scenario string)`.
#[test]
fn net_crash_recovery_cells_are_safe_and_reproducible() {
    let registry = standard_registry();
    for kind in [StackKind::Ba, StackKind::SvssChain] {
        for backend in ["sim", "sharded:4", "wire", "async"] {
            let spec = format!("n=4,t=1,corrupt=recover:80@3,sched=net:lat=1..8,rt={backend}");
            let scenario = Scenario::parse(&spec).unwrap();
            for seed in SEEDS {
                let first = run_cell(kind, &scenario, *seed, &registry);
                assert!(
                    first.violations.is_empty(),
                    "{} {spec} seed={seed}: {:?}",
                    kind.label(),
                    first.violations
                );
                assert_eq!(
                    first,
                    run_cell(kind, &scenario, *seed, &registry),
                    "{} {spec} seed={seed}: recovery cell must reproduce",
                    kind.label()
                );
            }
        }
    }
}

/// Violation forensics end-to-end: a (test-forced) invariant violation
/// on a byte-junk scenario produces a repro bundle whose scenario string
/// and seed replay — through the ordinary `(seed, scenario string)` cell
/// runner — to the *same* fingerprint and the same retained JSONL trace.
#[test]
fn violation_repro_bundle_replays_to_the_same_fingerprint() {
    for (spec, is_net) in [
        ("n=4,t=1,corrupt=garbage:40@3,sched=starve:1,rt=wire", false),
        // A virtual-time cell: the bundled JSONL must carry the virtual
        // timestamps, so the replayed byte-identity also pins them.
        (
            "n=4,t=1,sched=net:lat=1..12,partition=p50,heal=200,rt=wire",
            true,
        ),
    ] {
        violation_repro_bundle_roundtrip(spec, is_net);
    }
}

/// Adaptive adversaries in the conformance net: the registered policies
/// (`coin-favorite` on BA, `core-candidates` on the SVSS chain and the
/// common subset) observe delivered traffic and corrupt victims mid-run,
/// yet every cell stays safe — the invariants hold for the parties that
/// *remain* honest — the victim count never exceeds `t`, and each cell
/// re-runs bit-for-bit from `(seed, scenario string)`. Reproducibility
/// is asserted per backend, not across backends: observation timing is
/// backend-specific by design (`sim` feeds the controller per delivery,
/// `sharded` at epoch barriers), so the *decisions* may differ between
/// backends while each backend's own schedule stays a pure function of
/// the seed.
#[test]
fn adaptive_cells_are_safe_and_reproducible() {
    use aft::core::scenarios::run_cell_instrumented;
    use aft::sim::TraceMode;
    let registry = standard_registry();
    for (kind, attack) in [
        (StackKind::Ba, "adaptive:coin-favorite@*"),
        (StackKind::Ba, "adaptive:coin-favorite:equivocate@*"),
        (StackKind::SvssChain, "adaptive:core-candidates@*"),
        (StackKind::CommonSubset, "adaptive:core-candidates@*"),
    ] {
        for backend in ["sim", "sharded:4", "wire", "async"] {
            let spec = format!("n=4,t=1,corrupt={attack},sched=random,rt={backend}");
            let scenario = Scenario::parse(&spec).unwrap_or_else(|| panic!("{spec:?} must parse"));
            for seed in SEEDS {
                let first = run_cell_instrumented(
                    kind,
                    &scenario,
                    *seed,
                    &registry,
                    u64::MAX,
                    TraceMode::Off,
                );
                assert!(
                    first.report.violations.is_empty(),
                    "{} {spec} seed={seed}: {:?}",
                    kind.label(),
                    first.report.violations
                );
                assert!(
                    first.victims.len() <= scenario.t,
                    "{} {spec} seed={seed}: victim cap exceeded: {:?}",
                    kind.label(),
                    first.victims
                );
                assert!(
                    !first.victims.is_empty(),
                    "{} {spec} seed={seed}: the adaptive policy never struck",
                    kind.label()
                );
                let again = run_cell_instrumented(
                    kind,
                    &scenario,
                    *seed,
                    &registry,
                    u64::MAX,
                    TraceMode::Off,
                );
                assert_eq!(
                    first.report,
                    again.report,
                    "{} {spec} seed={seed}: adaptive cell must reproduce bit-for-bit",
                    kind.label()
                );
                assert_eq!(
                    first.victims,
                    again.victims,
                    "{} {spec} seed={seed}: victim set must reproduce",
                    kind.label()
                );
            }
        }
    }
}

/// Differential: an adaptive plan whose decision policy is *constant*
/// (`pin`, which corrupts a fixed target at episode start and ignores
/// all observations) is byte-identical to the equivalent static plan.
/// `adaptive:pin:silent:3@*` mutes party 3 from the first activation —
/// exactly what `silent@3` deploys — and the observation hook draws no
/// randomness and sends nothing, so the full cell reports (outputs
/// fingerprint, per-kind metrics, sends, deliveries, steps) must agree
/// bit-for-bit on every stack, backend and pinned seed.
#[test]
fn constant_adaptive_policy_matches_the_static_plan_bit_for_bit() {
    for kind in StackKind::all() {
        for backend in BACKENDS {
            for seed in SEEDS {
                let adaptive = run_on(
                    kind,
                    "n=4,t=1,corrupt=adaptive:pin:silent:3@*,sched=random",
                    backend,
                    *seed,
                );
                let fixed = run_on(
                    kind,
                    "n=4,t=1,corrupt=silent@3,sched=random",
                    backend,
                    *seed,
                );
                assert_eq!(
                    adaptive,
                    fixed,
                    "{} rt={backend} seed={seed}: constant adaptive policy diverged \
                     from the static plan",
                    kind.label()
                );
            }
        }
    }
}

fn violation_repro_bundle_roundtrip(spec: &str, is_net: bool) {
    use aft::core::scenarios::{run_cell_traced, write_repro_bundle};
    use aft::sim::TraceMode;
    let registry = standard_registry();
    let scenario = Scenario::parse(spec).unwrap();
    let seed = 6;
    let (mut report, events) = run_cell_traced(
        StackKind::Ba,
        &scenario,
        seed,
        &registry,
        TraceMode::Ring(512),
    );
    assert!(events.len() <= 512, "ring bound");
    // Test-only forced violation: the standard cells are safe by
    // construction, so fake the detection to drive the forensics path.
    report
        .violations
        .push("test-forced: injected invariant violation".into());
    let dir = std::env::temp_dir().join(format!(
        "aft-repro-test-{}-{}",
        std::process::id(),
        if is_net { "net" } else { "order" }
    ));
    let bundle = write_repro_bundle(&dir, StackKind::Ba, &scenario, seed, &report, &events)
        .expect("bundle written");
    let manifest = std::fs::read_to_string(bundle.join("scenario.txt")).unwrap();
    let jsonl = std::fs::read_to_string(bundle.join("trace.jsonl")).unwrap();
    assert!(bundle.join("trace.perfetto.json").exists());
    assert!(manifest.contains("violation: test-forced"));
    if is_net {
        assert!(
            jsonl.contains("\"vtime\":"),
            "net cell bundles must carry virtual timestamps"
        );
    }

    // Replay purely from what the bundle records.
    let replay_spec = manifest
        .lines()
        .find_map(|l| l.strip_prefix("scenario: "))
        .expect("manifest records the scenario string");
    let replay_seed: u64 = manifest
        .lines()
        .find_map(|l| l.strip_prefix("seed: "))
        .expect("manifest records the seed")
        .parse()
        .unwrap();
    let replay_scenario = Scenario::parse(replay_spec).expect("recorded spec re-parses");
    let (replayed, replayed_events) = run_cell_traced(
        StackKind::Ba,
        &replay_scenario,
        replay_seed,
        &registry,
        TraceMode::Ring(512),
    );
    assert_eq!(
        replayed.fingerprint, report.fingerprint,
        "replay from (seed, scenario string) must reach the recorded fingerprint"
    );
    assert_eq!(
        aft::sim::trace::to_jsonl(&replayed_events),
        jsonl,
        "replayed trace must match the bundled JSONL byte-for-byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
