//! The Appendix B simulation technique applied to real protocols: an
//! 8-party inner system (A-Cast, binary BA) hosted on 4 outer
//! super-parties, as in the lower bound's `n ≤ 4t` reduction.

use aft::ba::{BinaryBa, OracleCoin};
use aft::broadcast::Acast;
use aft::sim::cluster::{Cluster, InnerFactory};
use aft::sim::{
    NetConfig, PartyId, Payload, RandomScheduler, SessionId, SessionTag, SimNetwork, StopReason,
};

fn watched(kind: &'static str) -> SessionId {
    SessionId::root().child(SessionTag::new(kind, 0))
}

#[test]
fn acast_eight_on_four() {
    let inner_n = 8;
    let inner_t = 2;
    let bloc = 2;
    let assignment: Vec<usize> = (0..inner_n).map(|i| i / bloc).collect();
    let mut net = SimNetwork::new(NetConfig::new(4, 1, 5), Box::new(RandomScheduler));
    let outer_sid = SessionId::root().child(SessionTag::new("cluster", 0));
    for outer in 0..4 {
        let factory: InnerFactory = Box::new(move |inner| {
            let inst: Box<dyn aft::sim::Instance> = if inner == 0 {
                Box::new(Acast::sender(PartyId(0), 777u64))
            } else {
                Box::new(Acast::<u64>::receiver(PartyId(0)))
            };
            vec![(watched("acast"), inst)]
        });
        net.spawn(
            PartyId(outer),
            outer_sid.clone(),
            Box::new(Cluster::new(
                inner_n,
                inner_t,
                assignment.clone(),
                watched("acast"),
                factory,
            )),
        );
    }
    let report = net.run(50_000_000);
    assert_eq!(report.stop, StopReason::Quiescent);
    for outer in 0..4 {
        let out = net
            .output_as::<Vec<(usize, Payload)>>(PartyId(outer), &outer_sid)
            .unwrap_or_else(|| panic!("outer {outer} incomplete"));
        assert_eq!(out.len(), 2);
        for (inner, payload) in out {
            assert_eq!(
                payload.downcast_ref::<u64>(),
                Some(&777),
                "inner party {inner} must deliver the broadcast"
            );
        }
    }
}

#[test]
fn binary_ba_eight_on_four() {
    let inner_n = 8;
    let inner_t = 2;
    let assignment: Vec<usize> = (0..inner_n).map(|i| i / 2).collect();
    let mut net = SimNetwork::new(NetConfig::new(4, 1, 6), Box::new(RandomScheduler));
    let outer_sid = SessionId::root().child(SessionTag::new("cluster", 0));
    for outer in 0..4 {
        let factory: InnerFactory = Box::new(move |inner| {
            let inst: Box<dyn aft::sim::Instance> =
                Box::new(BinaryBa::new(inner % 2 == 0, Box::new(OracleCoin::new(99))));
            vec![(watched("ba"), inst)]
        });
        net.spawn(
            PartyId(outer),
            outer_sid.clone(),
            Box::new(Cluster::new(
                inner_n,
                inner_t,
                assignment.clone(),
                watched("ba"),
                factory,
            )),
        );
    }
    let report = net.run(500_000_000);
    assert_eq!(report.stop, StopReason::Quiescent);
    // All 8 inner parties across all 4 outer hosts agree.
    let mut decisions = Vec::new();
    for outer in 0..4 {
        let out = net
            .output_as::<Vec<(usize, Payload)>>(PartyId(outer), &outer_sid)
            .unwrap_or_else(|| panic!("outer {outer} incomplete"));
        for (_, payload) in out {
            decisions.push(*payload.downcast_ref::<bool>().expect("BA output"));
        }
    }
    assert_eq!(decisions.len(), 8);
    assert!(
        decisions.windows(2).all(|w| w[0] == w[1]),
        "inner agreement across super-parties: {decisions:?}"
    );
}
