//! The protocol stack over the *threaded* runtime: same instances, real
//! OS threads and channels instead of the simulator.

use aft::ba::{BinaryBa, OracleCoin};
use aft::broadcast::Acast;
use aft::core::{CoinFlip, CoinFlipOutput, CoinFlipParams, CoinKind};
use aft::sim::threaded::run_threaded;
use aft::sim::{Instance, PartyId, SessionId, SessionTag};
use std::time::Duration;

fn sid(kind: &'static str) -> SessionId {
    SessionId::root().child(SessionTag::new(kind, 0))
}

#[test]
fn acast_over_threads() {
    let n = 4;
    let spawns: Vec<Vec<(SessionId, Box<dyn Instance>)>> = (0..n)
        .map(|p| {
            let inst: Box<dyn Instance> = if p == 0 {
                Box::new(Acast::sender(PartyId(0), 99u64))
            } else {
                Box::new(Acast::<u64>::receiver(PartyId(0)))
            };
            vec![(sid("acast"), inst)]
        })
        .collect();
    let outputs = run_threaded(n, 1, 11, spawns, Duration::from_millis(5));
    for (p, out) in outputs.iter().enumerate() {
        assert_eq!(
            out.get(&sid("acast")).and_then(|v| v.downcast_ref::<u64>()),
            Some(&99),
            "party {p}"
        );
    }
}

#[test]
fn binary_ba_over_threads() {
    let n = 4;
    let spawns: Vec<Vec<(SessionId, Box<dyn Instance>)>> = (0..n)
        .map(|p| {
            let inst: Box<dyn Instance> =
                Box::new(BinaryBa::new(p % 2 == 0, Box::new(OracleCoin::new(5))));
            vec![(sid("ba"), inst)]
        })
        .collect();
    let outputs = run_threaded(n, 1, 13, spawns, Duration::from_millis(5));
    let decisions: Vec<bool> = outputs
        .iter()
        .map(|o| {
            *o.get(&sid("ba"))
                .and_then(|v| v.downcast_ref::<bool>())
                .expect("BA terminates over threads")
        })
        .collect();
    assert!(
        decisions.windows(2).all(|w| w[0] == w[1]),
        "agreement over real threads: {decisions:?}"
    );
}

#[test]
fn strong_coin_over_threads() {
    let n = 4;
    let spawns: Vec<Vec<(SessionId, Box<dyn Instance>)>> = (0..n)
        .map(|_| {
            let inst: Box<dyn Instance> = Box::new(CoinFlip::new(
                CoinFlipParams::FixedK { k: 1 },
                CoinKind::Oracle(21),
            ));
            vec![(sid("coin"), inst)]
        })
        .collect();
    let outputs = run_threaded(n, 1, 17, spawns, Duration::from_millis(5));
    let coins: Vec<bool> = outputs
        .iter()
        .map(|o| {
            o.get(&sid("coin"))
                .and_then(|v| v.downcast_ref::<CoinFlipOutput>())
                .expect("coin terminates over threads")
                .value
        })
        .collect();
    assert!(
        coins.windows(2).all(|w| w[0] == w[1]),
        "strong coin agreement over real threads: {coins:?}"
    );
}
