//! Cross-crate integration tests: the complete paper stack
//! (A-Cast → SVSS → BA → CommonSubset → CoinFlip → FairChoice → FBA)
//! running together over the simulator, including the fully
//! information-theoretic configuration with no oracle anywhere.
//!
//! These tests exercise simulator-*specific* power — adversarial
//! schedulers, byte-exact replay, step-indexed crashes. The
//! backend-portable half of the old suite lives in `cross_backend.rs`,
//! which runs identical deployments on every `Runtime` backend.

use aft::core::{CoinFlip, CoinFlipOutput, CoinFlipParams, CoinKind, FairChoiceParams, Fba};
use aft::sim::{
    scheduler_by_name, Instance, NetConfig, PartyId, SessionId, SessionTag, SilentInstance,
    SimNetwork, StopReason,
};

fn sid(kind: &'static str) -> SessionId {
    SessionId::root().child(SessionTag::new(kind, 0))
}

#[test]
fn full_it_stack_coin_flip_no_oracle() {
    // CoinFlip with WeakShared BA coins: every bit of randomness in the
    // system comes from SVSS — the paper's actual construction.
    let (n, t) = (4usize, 1usize);
    for seed in 0..2u64 {
        let mut net = SimNetwork::new(
            NetConfig::new(n, t, seed),
            scheduler_by_name("random").unwrap(),
        );
        for p in 0..n {
            net.spawn(
                PartyId(p),
                sid("coin"),
                Box::new(CoinFlip::new(
                    CoinFlipParams::FixedK { k: 1 },
                    CoinKind::WeakShared,
                )),
            );
        }
        let report = net.run(500_000_000);
        assert_eq!(report.stop, StopReason::Quiescent, "seed={seed}");
        let outs: Vec<bool> = (0..n)
            .map(|p| {
                net.output_as::<CoinFlipOutput>(PartyId(p), &sid("coin"))
                    .unwrap_or_else(|| panic!("seed={seed} p={p} did not terminate"))
                    .value
            })
            .collect();
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "seed={seed}: {outs:?}"
        );
    }
}

#[test]
fn fba_full_stack_with_weak_shared_coins() {
    let (n, t) = (4usize, 1usize);
    let mut net = SimNetwork::new(
        NetConfig::new(n, t, 5),
        scheduler_by_name("random").unwrap(),
    );
    let inputs = ["alpha", "beta", "gamma", "delta"];
    for (p, input) in inputs.iter().enumerate().take(n) {
        net.spawn(
            PartyId(p),
            sid("fba"),
            Box::new(Fba::new(
                input.to_string(),
                FairChoiceParams::FixedK { k: 1 },
                CoinKind::WeakShared,
            )),
        );
    }
    let report = net.run(2_000_000_000);
    assert_eq!(report.stop, StopReason::Quiescent);
    let outs: Vec<String> = (0..n)
        .map(|p| {
            net.output_as::<String>(PartyId(p), &sid("fba"))
                .expect("terminates")
                .clone()
        })
        .collect();
    assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
    assert!(inputs.contains(&outs[0].as_str()));
}

#[test]
fn coin_flip_under_every_scheduler() {
    for sched in ["fifo", "random", "lifo", "window4", "window16", "starve:0"] {
        let (n, t) = (4usize, 1usize);
        let mut net = SimNetwork::new(NetConfig::new(n, t, 9), scheduler_by_name(sched).unwrap());
        for p in 0..n {
            net.spawn(
                PartyId(p),
                sid("coin"),
                Box::new(CoinFlip::new(
                    CoinFlipParams::FixedK { k: 2 },
                    CoinKind::Oracle(3),
                )),
            );
        }
        let report = net.run(500_000_000);
        assert_eq!(report.stop, StopReason::Quiescent, "sched={sched}");
        let outs: Vec<bool> = (0..n)
            .map(|p| {
                net.output_as::<CoinFlipOutput>(PartyId(p), &sid("coin"))
                    .unwrap_or_else(|| panic!("sched={sched} p={p}"))
                    .value
            })
            .collect();
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "sched={sched}: {outs:?}"
        );
    }
}

#[test]
fn concurrent_protocol_sessions_do_not_interfere() {
    // A coin flip and an FBA run concurrently on the same network.
    let (n, t) = (4usize, 1usize);
    let mut net = SimNetwork::new(
        NetConfig::new(n, t, 10),
        scheduler_by_name("random").unwrap(),
    );
    for p in 0..n {
        net.spawn(
            PartyId(p),
            sid("coin"),
            Box::new(CoinFlip::new(
                CoinFlipParams::FixedK { k: 1 },
                CoinKind::Oracle(1),
            )),
        );
        net.spawn(
            PartyId(p),
            sid("fba"),
            Box::new(Fba::new(
                p,
                FairChoiceParams::FixedK { k: 1 },
                CoinKind::Oracle(2),
            )),
        );
    }
    let report = net.run(1_000_000_000);
    assert_eq!(report.stop, StopReason::Quiescent);
    let coin0 = net
        .output_as::<CoinFlipOutput>(PartyId(0), &sid("coin"))
        .unwrap()
        .value;
    let fba0 = *net.output_as::<usize>(PartyId(0), &sid("fba")).unwrap();
    for p in 1..n {
        assert_eq!(
            net.output_as::<CoinFlipOutput>(PartyId(p), &sid("coin"))
                .unwrap()
                .value,
            coin0
        );
        assert_eq!(net.output_as::<usize>(PartyId(p), &sid("fba")), Some(&fba0));
    }
    assert!(fba0 < n, "FBA output is some party's input");
}

#[test]
fn whole_stack_deterministic_replay() {
    let run = |seed: u64| {
        let (n, t) = (4usize, 1usize);
        let mut net = SimNetwork::new(
            NetConfig::new(n, t, seed),
            scheduler_by_name("random").unwrap(),
        );
        net.enable_trace();
        for p in 0..n {
            net.spawn(
                PartyId(p),
                sid("coin"),
                Box::new(CoinFlip::new(
                    CoinFlipParams::FixedK { k: 1 },
                    CoinKind::Oracle(0),
                )),
            );
        }
        net.run(500_000_000);
        (
            net.trace().to_vec(),
            net.output_as::<CoinFlipOutput>(PartyId(0), &sid("coin"))
                .copied(),
        )
    };
    let (trace_a, out_a) = run(77);
    let (trace_b, out_b) = run(77);
    assert_eq!(out_a, out_b);
    assert_eq!(trace_a, trace_b, "byte-identical delivery schedule");
}

#[test]
fn fba_with_crash_mid_protocol() {
    let (n, t) = (7usize, 2usize);
    let mut net = SimNetwork::new(
        NetConfig::new(n, t, 4),
        scheduler_by_name("random").unwrap(),
    );
    for p in 0..n {
        net.spawn(
            PartyId(p),
            sid("fba"),
            Box::new(Fba::new(
                format!("v{}", p % 3),
                FairChoiceParams::FixedK { k: 1 },
                CoinKind::Oracle(6),
            )),
        );
    }
    net.crash_at(PartyId(5), 300);
    net.crash_at(PartyId(6), 800);
    let report = net.run(2_000_000_000);
    assert_eq!(report.stop, StopReason::Quiescent);
    let outs: Vec<String> = (0..5)
        .map(|p| {
            net.output_as::<String>(PartyId(p), &sid("fba"))
                .expect("terminates")
                .clone()
        })
        .collect();
    assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
}

#[test]
fn byzantine_garbage_across_the_stack() {
    // A garbage-spraying party must not derail CoinFlip.
    use aft::sim::GarbageInstance;
    let (n, t) = (4usize, 1usize);
    let mut net = SimNetwork::new(
        NetConfig::new(n, t, 8),
        scheduler_by_name("random").unwrap(),
    );
    for p in 0..n {
        let inst: Box<dyn Instance> = if p == 1 {
            Box::new(GarbageInstance::new(500))
        } else {
            Box::new(CoinFlip::new(
                CoinFlipParams::FixedK { k: 2 },
                CoinKind::Oracle(5),
            ))
        };
        net.spawn(PartyId(p), sid("coin"), inst);
    }
    let report = net.run(1_000_000_000);
    assert_eq!(report.stop, StopReason::Quiescent);
    let outs: Vec<bool> = [0usize, 2, 3]
        .iter()
        .map(|&p| {
            net.output_as::<CoinFlipOutput>(PartyId(p), &sid("coin"))
                .expect("honest parties terminate")
                .value
        })
        .collect();
    assert!(outs.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn silent_t_parties_at_larger_n() {
    let (n, t) = (7usize, 2usize);
    let mut net = SimNetwork::new(
        NetConfig::new(n, t, 12),
        scheduler_by_name("random").unwrap(),
    );
    for p in 0..n {
        let inst: Box<dyn Instance> = if p < t {
            Box::new(SilentInstance)
        } else {
            Box::new(CoinFlip::new(
                CoinFlipParams::FixedK { k: 1 },
                CoinKind::Oracle(7),
            ))
        };
        net.spawn(PartyId(p), sid("coin"), inst);
    }
    let report = net.run(2_000_000_000);
    assert_eq!(report.stop, StopReason::Quiescent);
    let outs: Vec<bool> = (t..n)
        .map(|p| {
            net.output_as::<CoinFlipOutput>(PartyId(p), &sid("coin"))
                .unwrap_or_else(|| panic!("p={p}"))
                .value
        })
        .collect();
    assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
}
