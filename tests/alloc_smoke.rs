//! Allocation-count smoke check for the delivery hot path.
//!
//! Wraps the global allocator in a counting shim and drives the
//! single-threaded simulator through a steady-state message window. The
//! zero-copy pipeline's contract is that once every pool has reached its
//! high-water mark (spare batch deques, the arena slot table, the Fenwick
//! index, inline payload frames), delivering a message allocates
//! *nothing*: the echo window below asserts literally zero allocations.
//!
//! A BA episode window rides along with a bounded (not zero) assertion:
//! BA legitimately allocates off the delivery path — per-round vote
//! tables, A-Cast child instances, newly interned session ids — so the
//! check pins allocations *per delivered message* to a small constant
//! instead, which still catches an accidental per-message regression
//! (e.g. losing an inline or pool fast path) by an order of magnitude.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use aft::ba::{BinaryBa, OracleCoin};
use aft::sim::{
    Context, Instance, NetConfig, PartyId, Payload, RandomScheduler, SessionId, SessionTag,
    SimNetwork,
};

/// Counts heap acquisitions (alloc/realloc) while armed; frees are not
/// counted — the property under test is "no new memory is requested".
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The counter is process-global, so windows from concurrently running
/// tests must not interleave.
static WINDOW: Mutex<()> = Mutex::new(());

/// Runs `f` with the counter armed and returns how many allocations it
/// performed.
fn count_allocs<T>(f: impl FnOnce() -> T) -> (u64, T) {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), out)
}

/// Endless ping-pong: replies to every message with a fresh inline-frame
/// value, keeping exactly one envelope in flight per party — the
/// steady-state delivery workload, with no protocol state growth.
struct Echo;
impl Instance for Echo {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let next = PartyId((ctx.me().0 + 1) % ctx.n());
        ctx.send(next, 1u64);
    }
    fn on_message(&mut self, from: PartyId, p: &Payload, ctx: &mut Context<'_>) {
        if let Some(v) = p.to_msg::<u64>() {
            ctx.send(from, v.wrapping_add(1));
        }
    }
}

#[test]
fn steady_state_delivery_allocates_nothing() {
    let _guard = WINDOW.lock().unwrap();
    let sid = SessionId::root().child(SessionTag::new("alloc-echo", 0));
    let mut net = SimNetwork::new(NetConfig::new(4, 1, 42), Box::new(RandomScheduler));
    for p in 0..4 {
        net.spawn(PartyId(p), sid.clone(), Box::new(Echo));
    }
    // Warm-up: every pool and table reaches its high-water mark (the
    // Fenwick index compacts several times over this window).
    net.run(20_000);
    // A `run` call has a fixed cost independent of deliveries (building
    // the report clones the metrics); measure it with an empty window so
    // the assertion isolates the per-message cost.
    let (per_run, _) = count_allocs(|| net.run(0));
    let (allocs, _) = count_allocs(|| net.run(5_000));
    assert_eq!(
        allocs, per_run,
        "steady-state delivery must be allocation-free: a 5000-message \
         window allocated {allocs} times vs {per_run} for an empty run"
    );
}

#[test]
fn ba_episode_allocates_a_bounded_constant_per_message() {
    let _guard = WINDOW.lock().unwrap();
    let sid = SessionId::root().child(SessionTag::new("alloc-ba", 0));
    // Intern the session tree and warm the codec tables with a throwaway
    // episode of the same shape.
    let mut warm = SimNetwork::new(NetConfig::new(4, 1, 7), Box::new(RandomScheduler));
    for p in 0..4 {
        warm.spawn(
            PartyId(p),
            sid.clone(),
            Box::new(BinaryBa::new(true, Box::new(OracleCoin::new(7)))),
        );
    }
    warm.run(u64::MAX);

    let mut net = SimNetwork::new(NetConfig::new(4, 1, 7), Box::new(RandomScheduler));
    for p in 0..4 {
        net.spawn(
            PartyId(p),
            sid.clone(),
            Box::new(BinaryBa::new(true, Box::new(OracleCoin::new(7)))),
        );
    }
    let (allocs, report) = count_allocs(|| net.run(u64::MAX));
    let delivered = report.metrics.delivered.max(1);
    let per_message = allocs as f64 / delivered as f64;
    assert!(
        per_message < 40.0,
        "BA episode allocated {allocs} times for {delivered} deliveries \
         ({per_message:.1}/msg) — the delivery path should be pool-backed, \
         with only protocol-state growth left"
    );
}
