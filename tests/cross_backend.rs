//! The cross-backend suite: identical protocol deployments driven through
//! the [`Runtime`] trait on every execution backend — the deterministic
//! simulator, the sharded deterministic simulator, and the OS-thread
//! runtime — asserting the same protocol guarantees on each. This is the
//! parameterized successor of the old simulator-only/threaded-only
//! stacks; backend-specific power (adversarial schedulers, traces,
//! replay) stays in `full_stack.rs`.

use aft::ba::{BinaryBa, OracleCoin};
use aft::broadcast::Acast;
use aft::core::{CoinFlip, CoinFlipOutput, CoinFlipParams, CoinKind, CommonSubsetInstance};
use aft::sim::{
    runtime_by_name, Instance, Metrics, MuteAfter, NetConfig, PartyId, Runtime, RuntimeExt,
    SessionId, SessionTag, SilentInstance, StopReason,
};

const BACKENDS: &[&str] = &["sim", "sharded:2", "threaded"];

fn sid(kind: &'static str) -> SessionId {
    SessionId::root().child(SessionTag::new(kind, 0))
}

/// Runs `deploy` on a fresh runtime of every backend and hands the
/// quiescent runtime to `check`.
fn on_every_backend(
    config: NetConfig,
    deploy: impl Fn(&mut dyn Runtime),
    check: impl Fn(&str, &dyn Runtime),
) {
    for backend in BACKENDS {
        let mut rt = runtime_by_name(backend, config)
            .unwrap_or_else(|| panic!("backend {backend} must exist"));
        deploy(rt.as_mut());
        let report = rt.run(1_000_000_000);
        assert_eq!(report.stop, StopReason::Quiescent, "backend {backend}");
        check(backend, rt.as_ref());
    }
}

#[test]
fn acast_agreement_on_every_backend() {
    on_every_backend(
        NetConfig::new(4, 1, 11),
        |rt| {
            for p in 0..4 {
                let inst: Box<dyn Instance> = if p == 0 {
                    Box::new(Acast::sender(PartyId(0), 99u64))
                } else {
                    Box::new(Acast::<u64>::receiver(PartyId(0)))
                };
                rt.spawn(PartyId(p), sid("acast"), inst);
            }
        },
        |backend, rt| {
            for p in 0..4 {
                assert_eq!(
                    rt.output_as::<u64>(PartyId(p), &sid("acast")),
                    Some(&99),
                    "backend {backend} party {p}"
                );
            }
        },
    );
}

#[test]
fn binary_ba_agreement_on_every_backend() {
    on_every_backend(
        NetConfig::new(4, 1, 13),
        |rt| {
            for p in 0..4 {
                rt.spawn(
                    PartyId(p),
                    sid("ba"),
                    Box::new(BinaryBa::new(p % 2 == 0, Box::new(OracleCoin::new(5)))),
                );
            }
        },
        |backend, rt| {
            let decisions: Vec<bool> = (0..4)
                .map(|p| {
                    *rt.output_as::<bool>(PartyId(p), &sid("ba"))
                        .unwrap_or_else(|| panic!("backend {backend} p={p} must decide"))
                })
                .collect();
            assert!(
                decisions.windows(2).all(|w| w[0] == w[1]),
                "backend {backend}: {decisions:?}"
            );
        },
    );
}

#[test]
fn strong_coin_agreement_on_every_backend() {
    on_every_backend(
        NetConfig::new(4, 1, 17),
        |rt| {
            for p in 0..4 {
                rt.spawn(
                    PartyId(p),
                    sid("coin"),
                    Box::new(CoinFlip::new(
                        CoinFlipParams::FixedK { k: 1 },
                        CoinKind::Oracle(21),
                    )),
                );
            }
        },
        |backend, rt| {
            let coins: Vec<bool> = (0..4)
                .map(|p| {
                    rt.output_as::<CoinFlipOutput>(PartyId(p), &sid("coin"))
                        .unwrap_or_else(|| panic!("backend {backend} p={p} must terminate"))
                        .value
                })
                .collect();
            assert!(
                coins.windows(2).all(|w| w[0] == w[1]),
                "backend {backend}: {coins:?}"
            );
        },
    );
}

/// Cross-backend equivalence: for a fixed seed set, BA must reach the
/// *identical* decision on every backend. Unanimous honest inputs make the
/// decision a deterministic function of the inputs (the validity property
/// blocks Byzantine counter-votes), so nondeterministic threaded delivery
/// must still land on the same bit as the simulator.
#[test]
fn ba_decisions_identical_across_backends_for_seed_set() {
    for seed in [1u64, 2, 3, 5, 8, 13] {
        let input = seed % 2 == 0;
        let mut decisions = Vec::new();
        for backend in BACKENDS {
            let mut rt = runtime_by_name(backend, NetConfig::new(4, 1, seed)).unwrap();
            for p in 0..4 {
                rt.spawn(
                    PartyId(p),
                    sid("ba"),
                    Box::new(BinaryBa::new(input, Box::new(OracleCoin::new(seed)))),
                );
            }
            let report = rt.run(1_000_000_000);
            assert_eq!(report.stop, StopReason::Quiescent, "{backend} seed={seed}");
            let d = *rt
                .output_as::<bool>(PartyId(0), &sid("ba"))
                .unwrap_or_else(|| panic!("{backend} seed={seed} must decide"));
            assert_eq!(d, input, "{backend} seed={seed}: validity forces the input");
            decisions.push(d);
        }
        assert!(
            decisions.windows(2).all(|w| w[0] == w[1]),
            "seed={seed}: backends disagree: {decisions:?}"
        );
    }
}

/// Quiescence under a fully crashed party, on both backends: the three
/// live parties run BA to completion; deliveries to the crashed party are
/// dropped and counted, and the system still quiesces.
#[test]
fn quiescence_under_crash_on_every_backend() {
    on_every_backend(
        NetConfig::new(4, 1, 23),
        |rt| {
            for p in 0..4 {
                rt.spawn(
                    PartyId(p),
                    sid("ba"),
                    Box::new(BinaryBa::new(true, Box::new(OracleCoin::new(2)))),
                );
            }
            rt.crash(PartyId(3));
        },
        |backend, rt| {
            let metrics = rt.metrics();
            assert!(
                rt.output(PartyId(3), &sid("ba")).is_none(),
                "backend {backend}"
            );
            assert!(
                metrics.dropped_crashed > 0,
                "backend {backend}: deliveries to the crashed party must be counted"
            );
            let decisions: Vec<bool> = (0..3)
                .map(|p| {
                    *rt.output_as::<bool>(PartyId(p), &sid("ba"))
                        .unwrap_or_else(|| panic!("backend {backend} p={p} decides despite crash"))
                })
                .collect();
            assert!(decisions.iter().all(|&d| d), "validity with unanimous true");
        },
    );
}

/// Quiescence under mute and mid-protocol-muted behaviors, on both
/// backends: one party silent from the start, one going mute after a few
/// events — honest parties still decide and the system quiesces.
#[test]
fn quiescence_under_mute_behaviors_on_every_backend() {
    on_every_backend(
        NetConfig::new(7, 2, 29),
        |rt| {
            for p in 0..7 {
                let inst: Box<dyn Instance> = match p {
                    5 => Box::new(SilentInstance),
                    6 => Box::new(MuteAfter::new(
                        Box::new(BinaryBa::new(true, Box::new(OracleCoin::new(3)))),
                        10,
                    )),
                    _ => Box::new(BinaryBa::new(true, Box::new(OracleCoin::new(3)))),
                };
                rt.spawn(PartyId(p), sid("ba"), inst);
            }
        },
        |backend, rt| {
            let decisions: Vec<bool> = (0..5)
                .map(|p| {
                    *rt.output_as::<bool>(PartyId(p), &sid("ba"))
                        .unwrap_or_else(|| panic!("backend {backend} p={p} decides despite mutes"))
                })
                .collect();
            assert!(
                decisions.iter().all(|&d| d),
                "backend {backend}: {decisions:?}"
            );
        },
    );
}

/// Sorted `(kind, sent count)` fingerprint of a metrics snapshot.
fn kind_fingerprint(metrics: &Metrics) -> Vec<(&'static str, u64)> {
    let mut kinds: Vec<(&'static str, u64)> = metrics.kinds().collect();
    kinds.sort();
    kinds
}

/// The tentpole equivalence guarantee on the BA stack: for a fixed seed
/// set, every shard count of the sharded simulator produces outputs,
/// per-kind message counts, and delivery counts *identical* to the
/// single-threaded simulator. (The sharded schedule is a pure function of
/// `(seed, scheduler)`, independent of `k`, and unanimous-input BA pins
/// the outcome, so the backends must agree bit-for-bit.)
#[test]
fn ba_stack_identical_on_sim_and_every_shard_count() {
    for seed in [1u64, 2, 3, 5, 8, 13] {
        let run = |backend: &str| {
            let mut rt = runtime_by_name(backend, NetConfig::new(7, 2, seed)).unwrap();
            for p in 0..7 {
                rt.spawn(
                    PartyId(p),
                    sid("ba"),
                    Box::new(BinaryBa::new(
                        seed % 2 == 0,
                        Box::new(OracleCoin::new(seed)),
                    )),
                );
            }
            let report = rt.run(1_000_000_000);
            assert_eq!(report.stop, StopReason::Quiescent, "{backend} seed={seed}");
            let outputs: Vec<Option<bool>> = (0..7)
                .map(|p| rt.output_as::<bool>(PartyId(p), &sid("ba")).copied())
                .collect();
            let metrics = rt.metrics();
            (
                outputs,
                kind_fingerprint(&metrics),
                metrics.sent,
                metrics.delivered,
            )
        };
        let reference = run("sim");
        assert!(reference.0.iter().all(|o| o.is_some()), "seed={seed}");
        for backend in ["sharded:1", "sharded:2", "sharded:4"] {
            assert_eq!(run(backend), reference, "{backend} seed={seed}");
        }
    }
}

/// The same equivalence on the common-subset stack: outputs agree with
/// the simulator on every seed, and on a pinned seed set the per-kind
/// message counts and delivery counts are identical too. (Common subset's
/// internal BA traffic is genuinely schedule-sensitive, so count equality
/// between *different* schedules only holds where the simulator's own
/// schedule takes the full deterministic round — the pinned seeds.)
#[test]
fn common_subset_stack_identical_on_sim_and_sharded() {
    let run = |backend: &str, seed: u64| {
        let mut rt = runtime_by_name(backend, NetConfig::new(4, 1, seed)).unwrap();
        for p in 0..4 {
            rt.spawn(
                PartyId(p),
                sid("cs"),
                Box::new(CommonSubsetInstance::new(3, CoinKind::Oracle(seed), true)),
            );
        }
        let report = rt.run(1_000_000_000);
        assert_eq!(report.stop, StopReason::Quiescent, "{backend} seed={seed}");
        let outputs: Vec<Option<Vec<PartyId>>> = (0..4)
            .map(|p| {
                rt.output_as::<Vec<PartyId>>(PartyId(p), &sid("cs"))
                    .cloned()
            })
            .collect();
        let metrics = rt.metrics();
        (
            outputs,
            kind_fingerprint(&metrics),
            metrics.sent,
            metrics.delivered,
        )
    };
    // Outputs agree everywhere.
    for seed in 0u64..12 {
        let reference = run("sim", seed);
        assert!(reference.0.iter().all(|o| o.is_some()), "seed={seed}");
        for backend in ["sharded:1", "sharded:4"] {
            assert_eq!(run(backend, seed).0, reference.0, "{backend} seed={seed}");
        }
    }
    // Full bit-for-bit equality (outputs, per-kind counts, deliveries) on
    // the pinned seed set (re-pinned after envelope batching reshaped the
    // schedules).
    for seed in [1u64, 2, 3, 11, 16, 19, 22, 25, 30, 34, 44] {
        let reference = run("sim", seed);
        for backend in ["sharded:1", "sharded:2", "sharded:4"] {
            assert_eq!(run(backend, seed), reference, "{backend} seed={seed}");
        }
    }
}

/// The same equivalence under the locality-preserving `block:<b>`
/// scheduler, on BOTH stacks: with every party block-scheduled, `sim` and
/// every `sharded:<k>` agree bit-for-bit — outputs, per-kind counts,
/// sends and deliveries — on *every* seed tried, not just a pinned
/// subset. (Block scheduling is FIFO at block granularity, so the
/// deterministic round structure that makes counts schedule-sensitive
/// collapses to the same totals on both backends, while within-block
/// order stays random. The equivalence relies on `sim`'s fairness cap
/// staying idle, which near-FIFO block scheduling ensures at these
/// scales — see the `BlockScheduler` docs for the deep-run caveat.)
/// This is also the regression net for batched delivery: all of this
/// traffic flows through merged same-`(src, dst)` batch records.
#[test]
fn block_scheduler_stacks_identical_on_sim_and_every_shard_count() {
    // BA stack at n = 7.
    for seed in [0u64, 1, 2, 3, 5, 8, 13, 21] {
        let run = |backend: &str| {
            let mut rt = runtime_by_name(backend, NetConfig::new(7, 2, seed)).unwrap();
            for p in 0..7 {
                rt.spawn(
                    PartyId(p),
                    sid("ba"),
                    Box::new(BinaryBa::new(
                        seed % 2 == 0,
                        Box::new(OracleCoin::new(seed)),
                    )),
                );
            }
            let report = rt.run(1_000_000_000);
            assert_eq!(report.stop, StopReason::Quiescent, "{backend} seed={seed}");
            let outputs: Vec<Option<bool>> = (0..7)
                .map(|p| rt.output_as::<bool>(PartyId(p), &sid("ba")).copied())
                .collect();
            let metrics = rt.metrics();
            (
                outputs,
                kind_fingerprint(&metrics),
                metrics.sent,
                metrics.delivered,
            )
        };
        let reference = run("sim:block:8");
        assert!(reference.0.iter().all(|o| o.is_some()), "seed={seed}");
        for backend in [
            "sharded:1:block:8",
            "sharded:2:block:8",
            "sharded:4:block:8",
        ] {
            assert_eq!(run(backend), reference, "{backend} seed={seed}");
        }
    }
    // Common-subset stack at n = 4.
    for seed in [0u64, 3, 9, 14, 23] {
        let run = |backend: &str| {
            let mut rt = runtime_by_name(backend, NetConfig::new(4, 1, seed)).unwrap();
            for p in 0..4 {
                rt.spawn(
                    PartyId(p),
                    sid("cs"),
                    Box::new(CommonSubsetInstance::new(3, CoinKind::Oracle(seed), true)),
                );
            }
            let report = rt.run(1_000_000_000);
            assert_eq!(report.stop, StopReason::Quiescent, "{backend} seed={seed}");
            let outputs: Vec<Option<Vec<PartyId>>> = (0..4)
                .map(|p| {
                    rt.output_as::<Vec<PartyId>>(PartyId(p), &sid("cs"))
                        .cloned()
                })
                .collect();
            let metrics = rt.metrics();
            (
                outputs,
                kind_fingerprint(&metrics),
                metrics.sent,
                metrics.delivered,
            )
        };
        let reference = run("sim:block:8");
        assert!(reference.0.iter().all(|o| o.is_some()), "seed={seed}");
        for backend in [
            "sharded:1:block:8",
            "sharded:2:block:8",
            "sharded:4:block:8",
        ] {
            assert_eq!(run(backend), reference, "{backend} seed={seed}");
        }
    }
}

/// SVSS share→reconstruct chains — two dependent episodes on persistent
/// node state — now run on EVERY backend: the threaded runtime keeps its
/// nodes across `run` calls (matching sim and sharded), so the bundle
/// shared in episode 1 reconstructs in episode 2.
#[test]
fn svss_share_then_reconstruct_chain_on_every_backend() {
    use aft::field::Fp;
    use aft::svss::{ShareBundle, SvssRec, SvssShare};
    for backend in BACKENDS {
        let mut rt = runtime_by_name(backend, NetConfig::new(4, 1, 77)).unwrap();
        let secret = Fp::new(42);
        for p in 0..4 {
            let inst: Box<dyn Instance> = if p == 0 {
                Box::new(SvssShare::dealer(PartyId(0), secret))
            } else {
                Box::new(SvssShare::party(PartyId(0)))
            };
            rt.spawn(PartyId(p), sid("share"), inst);
        }
        let report = rt.run(1_000_000_000);
        assert_eq!(report.stop, StopReason::Quiescent, "{backend} share phase");
        let bundles: Vec<Option<ShareBundle>> = (0..4)
            .map(|p| {
                rt.output_as::<ShareBundle>(PartyId(p), &sid("share"))
                    .cloned()
            })
            .collect();
        assert!(
            bundles.iter().all(|b| b.is_some()),
            "{backend}: every party must hold a share bundle"
        );
        for (p, bundle) in bundles.into_iter().enumerate() {
            rt.spawn(
                PartyId(p),
                sid("rec"),
                Box::new(SvssRec::new(bundle.unwrap())),
            );
        }
        let report = rt.run(1_000_000_000);
        assert_eq!(report.stop, StopReason::Quiescent, "{backend} rec phase");
        for p in 0..4 {
            assert_eq!(
                rt.output_as::<Fp>(PartyId(p), &sid("rec")),
                Some(&secret),
                "{backend} party {p} reconstructs the dealt secret"
            );
        }
    }
}

/// Crash-before-run retraction (the old simulator footgun): a party
/// crashed after spawning but before the first `run` must never send, on
/// every backend — the simulator retracts its buffered initial sends, the
/// buffered backends never start it.
#[test]
fn crash_before_first_run_retracts_initial_sends_on_every_backend() {
    /// Greets everyone; outputs after hearing from all n parties.
    struct Hello {
        heard: usize,
    }
    impl Instance for Hello {
        fn on_start(&mut self, ctx: &mut aft::sim::Context<'_>) {
            ctx.send_all(1u8);
        }
        fn on_message(
            &mut self,
            _f: PartyId,
            _p: &aft::sim::Payload,
            ctx: &mut aft::sim::Context<'_>,
        ) {
            self.heard += 1;
            if self.heard == ctx.n() {
                ctx.output(self.heard);
            }
        }
    }
    on_every_backend(
        NetConfig::new(4, 1, 37),
        |rt| {
            for p in 0..4 {
                rt.spawn(PartyId(p), sid("hello"), Box::new(Hello { heard: 0 }));
            }
            rt.crash(PartyId(3));
        },
        |backend, rt| {
            let m = rt.metrics();
            assert_eq!(m.sent, 12, "backend {backend}: three live broadcasters");
            assert_eq!(
                m.dropped_crashed, 3,
                "backend {backend}: deliveries to the crashed party"
            );
            assert!(
                rt.output(PartyId(3), &sid("hello")).is_none(),
                "backend {backend}"
            );
        },
    );
}

/// The block-scheduler equivalence extended to *adversarial* runs: a
/// declarative scenario corrupting up to `t` parties (garbage sprayer,
/// mid-protocol mute, equivocator, whole-party crash) deployed through
/// `Scenario::deploy_episode` must leave `sim` and every `sharded:<k>`
/// bit-identical — outputs, per-kind counts, sends and deliveries — on
/// every seed tried, exactly like the honest runs above. Byzantine
/// instances draw from the same per-party RNGs, so they are as
/// deterministic as honest code under an identical schedule.
#[test]
fn adversarial_scenarios_identical_on_sim_and_every_shard_count() {
    use aft::sim::{AttackRegistry, Scenario};
    let registry = AttackRegistry::new(); // generic behaviours need no registration
    for plan in [
        "garbage:40@6",
        "silent@5;mute-after:6@6",
        "equivocate:12@6",
        "crash@5;garbage:24@6",
    ] {
        for seed in [1u64, 2, 3, 5, 8] {
            let run = |backend: &str| {
                let spec = format!("n=7,t=2,corrupt={plan},sched=block:8,rt={backend}");
                let scenario = Scenario::parse(&spec).unwrap();
                let mut rt = scenario.runtime(seed);
                scenario
                    .deploy_episode(rt.as_mut(), &registry, "ba", &sid("ba"), &[], |_, _| {
                        Box::new(BinaryBa::new(
                            seed % 2 == 0,
                            Box::new(OracleCoin::new(seed)),
                        ))
                    })
                    .unwrap();
                let report = rt.run(1_000_000_000);
                assert_eq!(report.stop, StopReason::Quiescent, "{spec} seed={seed}");
                let outputs: Vec<Option<bool>> = (0..7)
                    .map(|p| rt.output_as::<bool>(PartyId(p), &sid("ba")).copied())
                    .collect();
                let metrics = rt.metrics();
                (
                    outputs,
                    kind_fingerprint(&metrics),
                    metrics.sent,
                    metrics.delivered,
                )
            };
            let reference = run("sim");
            for backend in ["sharded:1", "sharded:2", "sharded:4"] {
                assert_eq!(run(backend), reference, "{plan} rt={backend} seed={seed}");
            }
        }
    }
}

/// Message conservation holds on every backend:
/// `sent = delivered + dropped_shunned + dropped_crashed` at quiescence.
#[test]
fn metrics_conservation_on_every_backend() {
    on_every_backend(
        NetConfig::new(4, 1, 31),
        |rt| {
            for p in 0..4 {
                rt.spawn(
                    PartyId(p),
                    sid("ba"),
                    Box::new(BinaryBa::new(p == 0, Box::new(OracleCoin::new(7)))),
                );
            }
            rt.crash(PartyId(2));
        },
        |backend, rt| {
            let m = rt.metrics();
            assert_eq!(
                m.sent,
                m.delivered + m.dropped_shunned + m.dropped_crashed,
                "backend {backend}: conservation at quiescence"
            );
            assert!(
                m.sent_by_kind("bav1") > 0,
                "backend {backend}: per-kind counts"
            );
        },
    );
}
