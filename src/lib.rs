//! # aft — Asynchronous Fault Tolerance with Optimal Resilience
//!
//! A full, executable reproduction of
//! *Revisiting Asynchronous Fault Tolerant Computation with Optimal
//! Resilience* (Ittai Abraham, Danny Dolev, Gilad Stern — PODC 2020,
//! arXiv:2006.16686).
//!
//! The paper proves two complementary results about asynchronous systems
//! of `n = 3t + 1` parties, up to `t` Byzantine:
//!
//! * **A lower bound** (Theorem 2.2): no almost-surely-terminating
//!   `(2/3 + ε)`-correct AVSS exists for `n ≤ 4t` — executable in
//!   [`lowerbound`].
//! * **Upper bounds** that dodge it: an ε-biased almost-surely terminating
//!   **strong common coin** ([`CoinFlip`], Theorem 3.5), an almost-fair
//!   m-way choice ([`FairChoice`], Theorem 4.3), and the first
//!   information-theoretic Byzantine agreement with **fair validity**
//!   ([`Fba`], Theorem 4.5).
//!
//! This facade crate re-exports the whole stack:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | algebra | [`field`] | `GF(2^61−1)`, polynomials, Reed–Solomon/OEC |
//! | execution | [`sim`] | deterministic asynchronous network simulator |
//! | broadcast | [`broadcast`] | Bracha A-Cast (Definition 4.4) |
//! | sharing | [`svss`] | shunning VSS (Definition 3.2, after ADH'08) |
//! | agreement | [`ba`] | binary BA (Definition 3.3) + coin sources |
//! | **the paper** | [`core`] | CommonSubset, CoinFlip, FairChoice, FBA |
//! | impossibility | [`lowerbound`] | Theorem 2.2 attacks, exhaustively |
//!
//! # Quickstart: an agreed fair coin among 4 parties, 1 Byzantine-silent
//!
//! ```
//! use aft::core::{CoinFlip, CoinFlipOutput, CoinFlipParams, CoinKind};
//! use aft::sim::{NetConfig, PartyId, RandomScheduler, SessionId, SessionTag, SilentInstance,
//!                SimNetwork};
//!
//! let (n, t) = (4, 1);
//! let mut net = SimNetwork::new(NetConfig::new(n, t, 2024), Box::new(RandomScheduler));
//! let sid = SessionId::root().child(SessionTag::new("coin", 0));
//! for p in 0..n {
//!     if p == 3 {
//!         // One party crashed from the start: the coin still completes.
//!         net.spawn(PartyId(p), sid.clone(), Box::new(SilentInstance));
//!     } else {
//!         net.spawn(
//!             PartyId(p),
//!             sid.clone(),
//!             Box::new(CoinFlip::new(CoinFlipParams::FixedK { k: 2 }, CoinKind::Oracle(7))),
//!         );
//!     }
//! }
//! net.run(50_000_000);
//! let coins: Vec<bool> = (0..3)
//!     .map(|p| net.output_as::<CoinFlipOutput>(PartyId(p), &sid).unwrap().value)
//!     .collect();
//! assert!(coins.windows(2).all(|w| w[0] == w[1]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aft_ba as ba;
pub use aft_broadcast as broadcast;
pub use aft_core as core;
pub use aft_field as field;
pub use aft_lowerbound as lowerbound;
pub use aft_sim as sim;
pub use aft_svss as svss;

// Convenience re-exports of the paper's headline API at the crate root.
pub use aft_core::{
    fair_choice_parameters, CoinFlip, CoinFlipOutput, CoinFlipParams, CoinKind, CommonSubset,
    FairChoice, FairChoiceParams, Fba,
};
pub use aft_lowerbound::theorem_2_2_report;
